"""SQL execution: compile ASTs onto the Session API."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine import predicate as P
from repro.engine.isolation import IsolationLevel
from repro.locks.modes import LockMode
from repro.sql import ast
from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import parse

_ISOLATION = {
    "read committed": IsolationLevel.READ_COMMITTED,
    "repeatable read": IsolationLevel.REPEATABLE_READ,
    "serializable": IsolationLevel.SERIALIZABLE,
    "s2pl": IsolationLevel.S2PL,
}

_LOCK_MODES = {
    "ACCESS SHARE": LockMode.ACCESS_SHARE,
    "ROW SHARE": LockMode.ROW_SHARE,
    "ROW EXCLUSIVE": LockMode.ROW_EXCLUSIVE,
    "SHARE UPDATE EXCLUSIVE": LockMode.SHARE_UPDATE_EXCLUSIVE,
    "SHARE": LockMode.SHARE,
    "SHARE ROW EXCLUSIVE": LockMode.SHARE_ROW_EXCLUSIVE,
    "EXCLUSIVE": LockMode.EXCLUSIVE,
    "ACCESS EXCLUSIVE": LockMode.ACCESS_EXCLUSIVE,
}

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


def eval_expr(expr, row: Dict[str, Any]) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return row.get(expr.name)
    if isinstance(expr, ast.BinaryOp):
        left = eval_expr(expr.left, row)
        right = eval_expr(expr.right, row)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        raise SQLSyntaxError(f"unsupported operator {expr.op!r}")
    raise SQLSyntaxError(f"cannot evaluate {expr!r}")


def _is_const(expr) -> bool:
    return isinstance(expr, ast.Literal)


def compile_condition(cond) -> P.Predicate:
    """Compile to an engine predicate; sargable comparisons become the
    structured predicates the planner can turn into index scans,
    anything else becomes a Func filter (a sequential scan)."""
    if cond is None:
        return P.AlwaysTrue()
    if isinstance(cond, ast.Comparison):
        left, right, op = cond.left, cond.right, cond.op
        if _is_const(left) and isinstance(right, ast.ColumnRef):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            op = flip.get(op, op)
        if isinstance(left, ast.ColumnRef) and _is_const(right):
            value = right.value
            classes = {"=": P.Eq, "<>": P.Ne, "<": P.Lt, "<=": P.Le,
                       ">": P.Gt, ">=": P.Ge}
            return classes[op](left.name, value)
        compare = _COMPARATORS[op]
        return P.Func(lambda row, l=left, r=right, c=compare:
                      c(eval_expr(l, row), eval_expr(r, row)),
                      description=f"{left} {op} {right}")
    if isinstance(cond, ast.BetweenCond):
        if isinstance(cond.column, ast.ColumnRef) and _is_const(cond.lo) \
                and _is_const(cond.hi):
            return P.Between(cond.column.name, cond.lo.value, cond.hi.value)
        return P.Func(lambda row, c=cond:
                      eval_expr(c.lo, row) <= eval_expr(c.column, row)
                      <= eval_expr(c.hi, row))
    if isinstance(cond, ast.AndCond):
        return P.And(*(compile_condition(part) for part in cond.parts))
    if isinstance(cond, ast.OrCond):
        return P.Or(*(compile_condition(part) for part in cond.parts))
    if isinstance(cond, ast.NotCond):
        inner = compile_condition(cond.inner)
        return P.Func(lambda row, p=inner: not p.matches(row),
                      description=f"NOT {inner!r}")
    raise SQLSyntaxError(f"cannot compile condition {cond!r}")


class SQLSession:
    """Execute SQL text against one engine session.

    ``execute`` returns a list of row dicts for SELECT, an affected-row
    count for INSERT/UPDATE/DELETE, and None for other statements.
    """

    def __init__(self, session) -> None:
        self.session = session
        self.db = session.db

    def execute(self, sql: str):
        statement = parse(sql)
        handler = getattr(self, "_do_" + type(statement).__name__.lower())
        return handler(statement)

    # -- DML -----------------------------------------------------------------
    def _do_select(self, stmt: ast.Select):
        where = compile_condition(stmt.where)
        if stmt.for_update:
            rows = self.session.select_for_update(stmt.table, where)
        else:
            rows = self.session.select(stmt.table, where)
        if stmt.order_by is not None:
            rows.sort(key=lambda r: r.get(stmt.order_by),
                      reverse=stmt.descending)
        if any(item.kind == "aggregate" for item in stmt.items):
            return [self._aggregate_row(stmt.items, rows)]
        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        if all(item.kind == "star" for item in stmt.items):
            return rows
        projected = []
        for row in rows:
            out: Dict[str, Any] = {}
            for item in stmt.items:
                if item.kind == "star":
                    out.update(row)
                else:
                    out[item.alias or item.column] = row.get(item.column)
            projected.append(out)
        return projected

    @staticmethod
    def _aggregate_row(items, rows) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for item in items:
            if item.kind != "aggregate":
                raise SQLSyntaxError(
                    "cannot mix aggregates with plain columns "
                    "(no GROUP BY support)")
            func = item.func
            name = item.alias or (f"{func.lower()}"
                                  + (f"_{item.column}" if item.column else ""))
            if func == "COUNT":
                value = (len(rows) if item.column is None else
                         sum(1 for r in rows if r.get(item.column)
                             is not None))
            else:
                values = [r.get(item.column) for r in rows
                          if r.get(item.column) is not None]
                if not values:
                    value = None
                elif func == "SUM":
                    value = sum(values)
                elif func == "MIN":
                    value = min(values)
                elif func == "MAX":
                    value = max(values)
                elif func == "AVG":
                    value = sum(values) / len(values)
                else:  # pragma: no cover - parser restricts
                    raise SQLSyntaxError(f"unknown aggregate {func}")
            out[name] = value
        return out

    def _do_insert(self, stmt: ast.Insert) -> int:
        count = 0
        for values in stmt.rows:
            row = {column: eval_expr(value, {})
                   for column, value in zip(stmt.columns, values)}
            self.session.insert(stmt.table, row)
            count += 1
        return count

    def _do_update(self, stmt: ast.Update) -> int:
        where = compile_condition(stmt.where)
        assignments = stmt.assignments

        def updater(row: Dict[str, Any]) -> Dict[str, Any]:
            return {column: eval_expr(expr, row)
                    for column, expr in assignments}

        return self.session.update(stmt.table, where, updater)

    def _do_delete(self, stmt: ast.Delete) -> int:
        return self.session.delete(stmt.table, compile_condition(stmt.where))

    # -- DDL --------------------------------------------------------------------
    def _do_createtable(self, stmt: ast.CreateTable):
        self.db.create_table(stmt.name, stmt.columns, key=stmt.primary_key)

    def _do_createindex(self, stmt: ast.CreateIndex):
        self.db.create_index(stmt.table, stmt.column, name=stmt.name,
                             unique=stmt.unique, using=stmt.using)

    def _do_dropindex(self, stmt: ast.DropIndex):
        self.session.drop_index(stmt.name)

    # -- transaction control -------------------------------------------------------
    def _do_begin(self, stmt: ast.Begin):
        isolation = _ISOLATION[stmt.isolation] if stmt.isolation else None
        self.session.begin(isolation, read_only=stmt.read_only,
                           deferrable=stmt.deferrable)

    def _do_commit(self, stmt: ast.Commit):
        self.session.commit()

    def _do_rollback(self, stmt: ast.Rollback):
        self.session.rollback()

    def _do_savepoint(self, stmt: ast.Savepoint):
        self.session.savepoint(stmt.name)

    def _do_rollbackto(self, stmt: ast.RollbackTo):
        self.session.rollback_to_savepoint(stmt.name)

    def _do_releasesavepoint(self, stmt: ast.ReleaseSavepoint):
        self.session.release_savepoint(stmt.name)

    def _do_preparetransaction(self, stmt: ast.PrepareTransaction):
        self.session.prepare_transaction(stmt.gid)

    def _do_commitprepared(self, stmt: ast.CommitPrepared):
        self.db.commit_prepared(stmt.gid)

    def _do_rollbackprepared(self, stmt: ast.RollbackPrepared):
        self.db.rollback_prepared(stmt.gid)

    def _do_locktable(self, stmt: ast.LockTable):
        try:
            mode = _LOCK_MODES[stmt.mode]
        except KeyError:
            raise SQLSyntaxError(f"unknown lock mode {stmt.mode!r}") from None
        self.session.lock_table(stmt.table, mode)

    def _do_vacuum(self, stmt: ast.Vacuum):
        self.db.vacuum(stmt.table)
