"""SQL execution: compile ASTs onto the Session API.

The statement hot path is cached at two levels (see DESIGN.md, "Query
planning"):

* a per-session LRU **parse cache** (SQL text -> AST; the AST nodes
  are frozen dataclasses, so sharing them across executions is safe),
  behind ``PerfConfig.parse_cache``;
* **prepared statements** (``PREPARE name AS ... / EXECUTE name(...)``)
  whose generic plan is re-derived only when the stats epoch moved --
  ANALYZE and DDL bump the epoch, flushing stale plans exactly like
  PostgreSQL's plancache invalidation. The scan choice itself is
  additionally memoized in the engine-level plan cache
  (repro.engine.planner), which both cached and ad-hoc statements hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import operators
from repro.engine import predicate as P
from repro.engine.isolation import IsolationLevel
from repro.errors import UserError
from repro.locks.modes import LockMode
from repro.sql import ast
from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import parse

#: Parse-cache capacity (statement strings per session).
PARSE_CACHE_SIZE = 256

_ISOLATION = {
    "read committed": IsolationLevel.READ_COMMITTED,
    "repeatable read": IsolationLevel.REPEATABLE_READ,
    "serializable": IsolationLevel.SERIALIZABLE,
    "s2pl": IsolationLevel.S2PL,
}

_LOCK_MODES = {
    "ACCESS SHARE": LockMode.ACCESS_SHARE,
    "ROW SHARE": LockMode.ROW_SHARE,
    "ROW EXCLUSIVE": LockMode.ROW_EXCLUSIVE,
    "SHARE UPDATE EXCLUSIVE": LockMode.SHARE_UPDATE_EXCLUSIVE,
    "SHARE": LockMode.SHARE,
    "SHARE ROW EXCLUSIVE": LockMode.SHARE_ROW_EXCLUSIVE,
    "EXCLUSIVE": LockMode.EXCLUSIVE,
    "ACCESS EXCLUSIVE": LockMode.ACCESS_EXCLUSIVE,
}

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


def eval_expr(expr, row: Dict[str, Any]) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return row.get(expr.name)
    if isinstance(expr, ast.BinaryOp):
        left = eval_expr(expr.left, row)
        right = eval_expr(expr.right, row)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        raise SQLSyntaxError(f"unsupported operator {expr.op!r}")
    raise SQLSyntaxError(f"cannot evaluate {expr!r}")


def _is_const(expr) -> bool:
    return isinstance(expr, ast.Literal)


def compile_condition(cond) -> P.Predicate:
    """Compile to an engine predicate; sargable comparisons become the
    structured predicates the planner can turn into index scans,
    anything else becomes a Func filter (a sequential scan)."""
    if cond is None:
        return P.AlwaysTrue()
    if isinstance(cond, ast.Comparison):
        left, right, op = cond.left, cond.right, cond.op
        if _is_const(left) and isinstance(right, ast.ColumnRef):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            op = flip.get(op, op)
        if isinstance(left, ast.ColumnRef) and _is_const(right):
            value = right.value
            classes = {"=": P.Eq, "<>": P.Ne, "<": P.Lt, "<=": P.Le,
                       ">": P.Gt, ">=": P.Ge}
            return classes[op](left.name, value)
        compare = _COMPARATORS[op]
        return P.Func(lambda row, l=left, r=right, c=compare:
                      c(eval_expr(l, row), eval_expr(r, row)),
                      description=f"{left} {op} {right}")
    if isinstance(cond, ast.BetweenCond):
        if isinstance(cond.column, ast.ColumnRef) and _is_const(cond.lo) \
                and _is_const(cond.hi):
            return P.Between(cond.column.name, cond.lo.value, cond.hi.value)
        return P.Func(lambda row, c=cond:
                      eval_expr(c.lo, row) <= eval_expr(c.column, row)
                      <= eval_expr(c.hi, row))
    if isinstance(cond, ast.AndCond):
        return P.And(*(compile_condition(part) for part in cond.parts))
    if isinstance(cond, ast.OrCond):
        return P.Or(*(compile_condition(part) for part in cond.parts))
    if isinstance(cond, ast.NotCond):
        inner = compile_condition(cond.inner)
        return P.Func(lambda row, p=inner: not p.matches(row),
                      description=f"NOT {inner!r}")
    raise SQLSyntaxError(f"cannot compile condition {cond!r}")


# -- condition analysis (join planning support) ----------------------------
def _conjuncts(cond) -> List[Any]:
    """Flatten nested ANDs into a conjunct list (source order)."""
    if cond is None:
        return []
    if isinstance(cond, ast.AndCond):
        out: List[Any] = []
        for part in cond.parts:
            out.extend(_conjuncts(part))
        return out
    return [cond]


def _expr_columns(expr, acc: List[str]) -> None:
    if isinstance(expr, ast.ColumnRef):
        acc.append(expr.name)
    elif isinstance(expr, ast.BinaryOp):
        _expr_columns(expr.left, acc)
        _expr_columns(expr.right, acc)


def _cond_columns(cond) -> List[str]:
    """Every column name referenced by a condition, in source order."""
    acc: List[str] = []

    def walk(c) -> None:
        if isinstance(c, ast.Comparison):
            _expr_columns(c.left, acc)
            _expr_columns(c.right, acc)
        elif isinstance(c, ast.BetweenCond):
            _expr_columns(c.column, acc)
            _expr_columns(c.lo, acc)
            _expr_columns(c.hi, acc)
        elif isinstance(c, ast.NotCond):
            walk(c.inner)
        elif isinstance(c, (ast.AndCond, ast.OrCond)):
            for part in c.parts:
                walk(part)

    walk(cond)
    return acc


def _map_expr_columns(expr, fn: Callable[[str], str]):
    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef(fn(expr.name))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _map_expr_columns(expr.left, fn),
                            _map_expr_columns(expr.right, fn))
    return expr


def _map_cond_columns(cond, fn: Callable[[str], str]):
    """Rewrite every ColumnRef name through ``fn`` (used to strip table
    qualifiers before compiling single-table predicates)."""
    if cond is None:
        return None
    if isinstance(cond, ast.Comparison):
        return ast.Comparison(cond.op, _map_expr_columns(cond.left, fn),
                              _map_expr_columns(cond.right, fn))
    if isinstance(cond, ast.BetweenCond):
        return ast.BetweenCond(_map_expr_columns(cond.column, fn),
                               _map_expr_columns(cond.lo, fn),
                               _map_expr_columns(cond.hi, fn))
    if isinstance(cond, ast.NotCond):
        return ast.NotCond(_map_cond_columns(cond.inner, fn))
    if isinstance(cond, ast.AndCond):
        return ast.AndCond(tuple(_map_cond_columns(p, fn)
                                 for p in cond.parts))
    if isinstance(cond, ast.OrCond):
        return ast.OrCond(tuple(_map_cond_columns(p, fn)
                                for p in cond.parts))
    return cond


def _base_name(name: str) -> str:
    """``t.c`` -> ``c``; unqualified names pass through."""
    return name.split(".", 1)[1] if "." in name else name


def _order_key(column: str):
    """ORDER BY sort key with PostgreSQL NULL placement: NULLs sort
    last ascending (and, via ``reverse=``, first descending)."""
    def key(row):
        value = row.get(column)
        return (value is None, value)
    return key


def _strip_prefix(name: str, table: str) -> str:
    if name.startswith(table + "."):
        return name[len(table) + 1:]
    return name


def _dequalify_select(stmt: ast.Select) -> ast.Select:
    """For single-table SELECTs, strip ``table.`` qualifiers so the
    engine sees plain column names; a qualifier naming any other table
    is an error (there is no FROM-clause entry for it)."""
    names = _cond_columns(stmt.where) + _cond_columns(stmt.having)
    names += [i.column for i in stmt.items if i.column is not None]
    names += list(stmt.group_by)
    if stmt.order_by is not None:
        names.append(stmt.order_by)
    if not any("." in n for n in names):
        return stmt

    def fn(name: str) -> str:
        if "." not in name:
            return name
        t, c = name.split(".", 1)
        if t != stmt.table:
            raise SQLSyntaxError(
                f"missing FROM-clause entry for table {t!r}")
        return c

    items = tuple(
        ast.SelectItem(i.kind,
                       fn(i.column) if i.column is not None else None,
                       i.func, i.alias)
        for i in stmt.items)
    return ast.Select(
        items, stmt.table, _map_cond_columns(stmt.where, fn),
        fn(stmt.order_by) if stmt.order_by is not None else None,
        stmt.descending, stmt.limit, stmt.for_update, stmt.joins,
        tuple(fn(g) for g in stmt.group_by),
        _map_cond_columns(stmt.having, fn))


def _equi_key(cond, acc, right_table: str,
              resolve: Callable[[str], str]):
    """``(left_owner, left_col, right_col)`` when ``cond`` is an
    equality between a column of an already-joined table and a column
    of ``right_table``; None otherwise."""
    if not isinstance(cond, ast.Comparison) or cond.op != "=":
        return None
    lhs, rhs = cond.left, cond.right
    if not (isinstance(lhs, ast.ColumnRef)
            and isinstance(rhs, ast.ColumnRef)):
        return None
    lt, rt = resolve(lhs.name), resolve(rhs.name)
    if lt in acc and rt == right_table:
        return (lt, _base_name(lhs.name), _base_name(rhs.name))
    if rt in acc and lt == right_table:
        return (rt, _base_name(rhs.name), _base_name(lhs.name))
    return None


@dataclass
class _JoinStep:
    """One left-deep join step: ``(accumulated) JOIN table``."""

    table: str
    #: Equi-key: owning table / raw column of the left side, raw column
    #: on the right table (all None for a keyless cross/filter join).
    l_owner: Optional[str] = None
    l_col: Optional[str] = None
    r_col: Optional[str] = None
    #: Residual predicate over combined rows (None when none apply).
    residual: Optional[P.Predicate] = None


@dataclass
class _JoinPlan:
    """The analyzed shape of a join query, shared by execution and
    EXPLAIN so both always agree."""

    tables: List[str]
    rels: Dict[str, Any]
    #: Column names owned by more than one table (never exposed
    #: unqualified on combined rows).
    ambiguous: set
    #: Per-table pushed-down scan predicate (AlwaysTrue when none).
    scan_preds: Dict[str, P.Predicate]
    steps: List[_JoinStep] = field(default_factory=list)


def _make_combine(left_tables: List[str], right_table: str, rels,
                  ambiguous) -> Callable:
    """Build the row combiner for one join step.

    Combined rows carry every column under its qualified
    ``table.column`` name plus, for columns owned by exactly one
    table, the bare name -- so residuals, HAVING, ORDER BY and
    projection can use whichever spelling the query wrote.
    """
    rcols = list(rels[right_table].columns)
    rqual = [f"{right_table}.{c}" for c in rcols]
    if len(left_tables) == 1:
        lt = left_tables[0]
        lcols = list(rels[lt].columns)
        lqual = [f"{lt}.{c}" for c in lcols]

        def combine(l_row, r_row):
            out: Dict[str, Any] = {}
            for c, q in zip(lcols, lqual):
                v = l_row.get(c)
                out[q] = v
                if c not in ambiguous:
                    out[c] = v
            for c, q in zip(rcols, rqual):
                v = r_row.get(c)
                out[q] = v
                if c not in ambiguous:
                    out[c] = v
            return out
        return combine

    def combine(l_row, r_row):
        out = dict(l_row)
        for c, q in zip(rcols, rqual):
            v = r_row.get(c)
            out[q] = v
            if c not in ambiguous:
                out[c] = v
        return out
    return combine


# -- prepared-statement parameter binding ---------------------------------
def _bind_expr(expr, args: Tuple[Any, ...]):
    if isinstance(expr, ast.Param):
        if expr.index > len(args):
            raise UserError(
                f"there is no parameter ${expr.index} "
                f"({len(args)} supplied)")
        return ast.Literal(args[expr.index - 1])
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _bind_expr(expr.left, args),
                            _bind_expr(expr.right, args))
    return expr


def _bind_cond(cond, args: Tuple[Any, ...]):
    if cond is None:
        return None
    if isinstance(cond, ast.Comparison):
        return ast.Comparison(cond.op, _bind_expr(cond.left, args),
                              _bind_expr(cond.right, args))
    if isinstance(cond, ast.BetweenCond):
        return ast.BetweenCond(_bind_expr(cond.column, args),
                               _bind_expr(cond.lo, args),
                               _bind_expr(cond.hi, args))
    if isinstance(cond, ast.NotCond):
        return ast.NotCond(_bind_cond(cond.inner, args))
    if isinstance(cond, ast.AndCond):
        return ast.AndCond(tuple(_bind_cond(p, args) for p in cond.parts))
    if isinstance(cond, ast.OrCond):
        return ast.OrCond(tuple(_bind_cond(p, args) for p in cond.parts))
    return cond


def bind_statement(stmt, args: Tuple[Any, ...]):
    """Substitute $n parameters with the EXECUTE arguments, returning a
    parameter-free statement of the same shape."""
    if isinstance(stmt, ast.Select):
        joins = tuple(ast.Join(j.table, _bind_cond(j.on, args))
                      for j in stmt.joins)
        return ast.Select(stmt.items, stmt.table,
                          _bind_cond(stmt.where, args), stmt.order_by,
                          stmt.descending, stmt.limit, stmt.for_update,
                          joins, stmt.group_by,
                          _bind_cond(stmt.having, args))
    if isinstance(stmt, ast.Update):
        assignments = tuple((col, _bind_expr(expr, args))
                            for col, expr in stmt.assignments)
        return ast.Update(stmt.table, assignments,
                          _bind_cond(stmt.where, args))
    if isinstance(stmt, ast.Delete):
        return ast.Delete(stmt.table, _bind_cond(stmt.where, args))
    if isinstance(stmt, ast.Insert):
        rows = tuple(tuple(_bind_expr(v, args) for v in row)
                     for row in stmt.rows)
        return ast.Insert(stmt.table, stmt.columns, rows)
    if args:
        raise UserError(
            f"{type(stmt).__name__} statements take no parameters")
    return stmt


@dataclass
class PreparedStatement:
    """One PREPARE'd statement and its cached generic plan."""

    name: str
    statement: Any
    #: Stats epoch the cached plan was derived under; a mismatch at
    #: EXECUTE time forces a replan (ANALYZE/DDL invalidation).
    plan_epoch: int = -1
    #: The generic plan summary (a repro.engine.planner.PlanNode) for
    #: plannable statements; None until first EXECUTE or after
    #: invalidation.
    plan: Any = None


class SQLSession:
    """Execute SQL text against one engine session.

    ``execute`` returns a list of row dicts for SELECT, an affected-row
    count for INSERT/UPDATE/DELETE, and None for other statements.
    """

    def __init__(self, session) -> None:
        self.session = session
        self.db = session.db
        self._use_parse_cache = self.db.config.perf.parse_cache
        self._parse_cache: "OrderedDict[str, Any]" = OrderedDict()
        metrics = self.db.obs.metrics
        self._parse_hits = metrics.counter("perf.parse_cache_hits")
        self._parse_misses = metrics.counter("perf.parse_cache_misses")
        self._prepared_replans = metrics.counter("sql.prepared_replans")
        self._prepared: Dict[str, PreparedStatement] = {}

    def execute(self, sql: str):
        statement = self._parse(sql)
        handler = getattr(self, "_do_" + type(statement).__name__.lower())
        return handler(statement)

    def _parse(self, sql: str):
        """Parse with the LRU statement cache (ASTs are frozen, so a
        cached statement is safe to re-execute)."""
        if not self._use_parse_cache:
            return parse(sql)
        cached = self._parse_cache.get(sql)
        if cached is not None:
            self._parse_cache.move_to_end(sql)
            self._parse_hits.inc()
            return cached
        self._parse_misses.inc()
        statement = parse(sql)
        self._parse_cache[sql] = statement
        if len(self._parse_cache) > PARSE_CACHE_SIZE:
            self._parse_cache.popitem(last=False)
        return statement

    # -- DML -----------------------------------------------------------------
    def _do_select(self, stmt: ast.Select):
        if stmt.for_update and (stmt.joins or stmt.group_by):
            raise SQLSyntaxError(
                "FOR UPDATE is not allowed with JOIN or GROUP BY")
        if stmt.joins:
            rows = self._join_rows(stmt)
            copied = True  # combine() built fresh dicts
        else:
            stmt = _dequalify_select(stmt)
            where = compile_condition(stmt.where)
            if (self.db.use_vectorized and not stmt.for_update
                    and not stmt.group_by and stmt.order_by is None
                    and stmt.items
                    and all(i.kind == "aggregate" for i in stmt.items)):
                # Aggregate pushdown: fold during the scan, never
                # materializing the row list. Matches the fold-after-
                # scan path value-for-value (BatchAggregator docstring);
                # ORDER BY disables it only because sorting the input
                # can change which of several equal-comparing objects
                # MIN/MAX return first.
                specs = [(item.func, item.column) for item in stmt.items]
                values = self.session.scan_aggregate(
                    stmt.table, specs, where)
                return [{self._agg_name(item): value
                         for item, value in zip(stmt.items, values)}]
            if stmt.for_update:
                rows = self.session.select_for_update(stmt.table, where)
                copied = True
            elif self.db.use_vectorized:
                # Zero-copy scan: rows alias live heap tuple payloads.
                # Every downstream consumer here only reads them; the
                # star projection below copies before returning.
                rows = self.session.scan_rows(stmt.table, where)
                copied = False
            else:
                rows = self.session.select(stmt.table, where)
                copied = True
        if stmt.group_by:
            grouped = self._grouped_rows(stmt, rows)
            if stmt.order_by is not None:
                key = stmt.order_by
                if grouped and key not in grouped[0]:
                    key = _base_name(key)
                grouped.sort(key=_order_key(key), reverse=stmt.descending)
            if stmt.limit is not None:
                grouped = grouped[:stmt.limit]
            return grouped
        if stmt.order_by is not None:
            rows.sort(key=_order_key(stmt.order_by),
                      reverse=stmt.descending)
        if any(item.kind == "aggregate" for item in stmt.items):
            return [self._aggregate_row(stmt.items, rows)]
        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        if all(item.kind == "star" for item in stmt.items):
            return rows if copied else [dict(r) for r in rows]
        projected = []
        for row in rows:
            out: Dict[str, Any] = {}
            for item in stmt.items:
                if item.kind == "star":
                    out.update(row)
                else:
                    out[item.alias or item.column] = row.get(item.column)
            projected.append(out)
        return projected

    # -- join execution ----------------------------------------------------
    def _analyze_join(self, stmt: ast.Select) -> _JoinPlan:
        """Classify WHERE/ON conjuncts into per-table pushdowns,
        equi-join keys and residual filters over a left-deep join tree
        in FROM order. Pure analysis -- execution and EXPLAIN both
        consume the result, so they cannot disagree."""
        tables = [stmt.table] + [j.table for j in stmt.joins]
        if len(set(tables)) != len(tables):
            raise SQLSyntaxError(
                "table name repeated in FROM/JOIN "
                "(table aliases are not supported)")
        rels = {t: self.db.relation(t) for t in tables}
        owners: Dict[str, List[str]] = {}
        for t in tables:
            for c in rels[t].columns:
                owners.setdefault(c, []).append(t)
        ambiguous = {c for c, ts in owners.items() if len(ts) > 1}

        def resolve(name: str) -> str:
            if "." in name:
                t, c = name.split(".", 1)
                if t not in rels:
                    raise SQLSyntaxError(
                        f"missing FROM-clause entry for table {t!r}")
                if c not in rels[t].columns:
                    raise SQLSyntaxError(
                        f"column {c!r} of table {t!r} does not exist")
                return t
            ts = owners.get(name)
            if not ts:
                raise SQLSyntaxError(f"column {name!r} does not exist")
            if len(ts) > 1:
                raise SQLSyntaxError(
                    f"column reference {name!r} is ambiguous")
            return ts[0]

        # The select list resolves against the same namespace as the
        # conditions, so bare references to columns owned by more than
        # one table are rejected up front (PostgreSQL's "column
        # reference is ambiguous"), not silently projected as NULL.
        for item in stmt.items:
            if item.kind != "star" and item.column is not None:
                resolve(item.column)

        pool = list(_conjuncts(stmt.where))
        for join in stmt.joins:
            pool.extend(_conjuncts(join.on))

        single: Dict[str, List[Any]] = {t: [] for t in tables}
        cross: List[Tuple[set, Any]] = []
        for cond in pool:
            ts = {resolve(n) for n in _cond_columns(cond)}
            if len(ts) <= 1:
                # Single-table conjunct: push into that table's scan
                # (qualifier stripped so And.index_range's
                # equality-preference applies as on any base scan).
                target = next(iter(ts)) if ts else tables[0]
                single[target].append(_map_cond_columns(
                    cond, lambda n, t=target: _strip_prefix(n, t)))
            else:
                cross.append((ts, cond))

        def compiled(conds: List[Any]) -> P.Predicate:
            if len(conds) == 1:
                return compile_condition(conds[0])
            return compile_condition(ast.AndCond(tuple(conds)))

        scan_preds = {t: (compiled(single[t]) if single[t]
                          else P.AlwaysTrue()) for t in tables}

        plan = _JoinPlan(tables, rels, ambiguous, scan_preds)
        acc = {tables[0]}
        remaining = cross
        for right_table in tables[1:]:
            avail = acc | {right_table}
            key = None
            residuals: List[Any] = []
            rest: List[Tuple[set, Any]] = []
            for ts, cond in remaining:
                if not ts <= avail:
                    rest.append((ts, cond))
                    continue
                pair = (None if key is not None
                        else _equi_key(cond, acc, right_table, resolve))
                if pair is not None:
                    key = pair
                else:
                    residuals.append(cond)
            plan.steps.append(_JoinStep(
                right_table,
                l_owner=key[0] if key else None,
                l_col=key[1] if key else None,
                r_col=key[2] if key else None,
                residual=compiled(residuals) if residuals else None))
            acc.add(right_table)
            remaining = rest
        return plan

    def _join_step_choice(self, plan: _JoinPlan, step: _JoinStep,
                          n_left: int):
        """The planner's algorithm/build-side verdict for one step."""
        planner = self.db.planner
        t0 = plan.tables[0]
        left_choice = (planner.choose(plan.rels[t0], plan.scan_preds[t0])
                       if n_left == 1 else None)
        right_choice = planner.choose(plan.rels[step.table],
                                      plan.scan_preds[step.table])
        left_rel = plan.rels[step.l_owner] if step.l_owner else plan.rels[t0]
        return planner.plan_join(left_rel, plan.rels[step.table],
                                 step.l_col, step.r_col,
                                 left_choice, right_choice)

    def _join_rows(self, stmt: ast.Select) -> List[Dict[str, Any]]:
        plan = self._analyze_join(stmt)
        use_vec = self.db.use_vectorized

        def scan(table: str):
            pred = plan.scan_preds[table]
            if use_vec:
                return self.session.scan_rows(table, pred)
            return self.session.select(table, pred)

        rows = scan(plan.tables[0])
        left_tables = [plan.tables[0]]
        for step in plan.steps:
            right_rows = scan(step.table)
            combine = _make_combine(left_tables, step.table, plan.rels,
                                    plan.ambiguous)
            cond = (step.residual.matches if step.residual is not None
                    else (lambda row: True))
            if step.l_col is not None:
                # First step joins two base scans (bare column names);
                # later steps read the qualified name off combined rows.
                lname = (step.l_col if len(left_tables) == 1
                         else f"{step.l_owner}.{step.l_col}")
                lkey = lambda r, n=lname: r.get(n)  # noqa: E731
                rkey = lambda r, n=step.r_col: r.get(n)  # noqa: E731
            else:
                lkey = rkey = None
            choice = self._join_step_choice(plan, step, len(left_tables))
            if choice.algorithm == "hash":
                rows = operators.hash_join(rows, right_rows, lkey, rkey,
                                           cond, combine,
                                           build=choice.build)
            elif choice.algorithm == "merge":
                rows = operators.merge_join(rows, right_rows, lkey, rkey,
                                            cond, combine)
            else:
                rows = operators.nested_loop_join(rows, right_rows, lkey,
                                                  rkey, cond, combine)
            left_tables.append(step.table)
        return rows

    # -- grouping ----------------------------------------------------------
    def _grouped_rows(self, stmt: ast.Select,
                      rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        group_cols = list(stmt.group_by)
        groups = operators.hash_group(rows, group_cols)
        having = (compile_condition(stmt.having)
                  if stmt.having is not None else None)
        bases = {_base_name(g) for g in group_cols} | set(group_cols)
        out_rows: List[Dict[str, Any]] = []
        for key, grows in groups:
            keyvals = dict(zip(group_cols, key))
            out: Dict[str, Any] = {}
            defaults: Dict[str, Any] = {}
            for item in stmt.items:
                if item.kind == "star":
                    raise SQLSyntaxError("cannot use * with GROUP BY")
                if item.kind == "aggregate":
                    default = (item.func.lower()
                               + (f"_{item.column}" if item.column else ""))
                    value = operators.aggregate_value(item.func,
                                                      item.column, grows)
                    defaults[default] = value
                    out[item.alias or default] = value
                else:
                    if (item.column not in group_cols
                            and _base_name(item.column) not in bases):
                        raise SQLSyntaxError(
                            f"column {item.column!r} must appear in the "
                            f"GROUP BY clause or be used in an aggregate")
                    value = (keyvals[item.column]
                             if item.column in keyvals
                             else grows[0].get(item.column) if grows
                             else None)
                    out[item.alias or _base_name(item.column)] = value
            if having is not None:
                # HAVING sees group columns (any spelling, via a sample
                # group row) plus aggregate outputs under their default
                # names (the parser compiles COUNT(*) in HAVING to the
                # column ref "count") and any aliases.
                env = dict(grows[0]) if grows else dict(keyvals)
                env.update(defaults)
                env.update(out)
                if not having.matches(env):
                    continue
            out_rows.append(out)
        return out_rows

    @staticmethod
    def _agg_name(item) -> str:
        """Output column name of an aggregate select item (the default
        the parser also uses for aggregate refs in HAVING)."""
        return item.alias or (item.func.lower()
                              + (f"_{item.column}" if item.column else ""))

    @staticmethod
    def _aggregate_row(items, rows) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for item in items:
            if item.kind != "aggregate":
                raise SQLSyntaxError(
                    "cannot mix aggregates with plain columns "
                    "(no GROUP BY support)")
            func = item.func
            name = SQLSession._agg_name(item)
            if func == "COUNT":
                value = (len(rows) if item.column is None else
                         sum(1 for r in rows if r.get(item.column)
                             is not None))
            else:
                column = item.column
                values = [v for r in rows
                          if (v := r.get(column)) is not None]
                if not values:
                    value = None
                elif func == "SUM":
                    value = sum(values)
                elif func == "MIN":
                    value = min(values)
                elif func == "MAX":
                    value = max(values)
                elif func == "AVG":
                    value = sum(values) / len(values)
                else:  # pragma: no cover - parser restricts
                    raise SQLSyntaxError(f"unknown aggregate {func}")
            out[name] = value
        return out

    def _do_insert(self, stmt: ast.Insert) -> int:
        count = 0
        for values in stmt.rows:
            row = {column: eval_expr(value, {})
                   for column, value in zip(stmt.columns, values)}
            self.session.insert(stmt.table, row)
            count += 1
        return count

    def _do_update(self, stmt: ast.Update) -> int:
        where = compile_condition(stmt.where)
        assignments = stmt.assignments

        def updater(row: Dict[str, Any]) -> Dict[str, Any]:
            return {column: eval_expr(expr, row)
                    for column, expr in assignments}

        return self.session.update(stmt.table, where, updater)

    def _do_delete(self, stmt: ast.Delete) -> int:
        return self.session.delete(stmt.table, compile_condition(stmt.where))

    # -- DDL --------------------------------------------------------------------
    def _do_createtable(self, stmt: ast.CreateTable):
        self.db.create_table(stmt.name, stmt.columns, key=stmt.primary_key)

    def _do_createindex(self, stmt: ast.CreateIndex):
        self.db.create_index(stmt.table, stmt.column, name=stmt.name,
                             unique=stmt.unique, using=stmt.using)

    def _do_dropindex(self, stmt: ast.DropIndex):
        self.session.drop_index(stmt.name)

    # -- transaction control -------------------------------------------------------
    def _do_begin(self, stmt: ast.Begin):
        isolation = _ISOLATION[stmt.isolation] if stmt.isolation else None
        self.session.begin(isolation, read_only=stmt.read_only,
                           deferrable=stmt.deferrable)

    def _do_commit(self, stmt: ast.Commit):
        self.session.commit()

    def _do_rollback(self, stmt: ast.Rollback):
        self.session.rollback()

    def _do_savepoint(self, stmt: ast.Savepoint):
        self.session.savepoint(stmt.name)

    def _do_rollbackto(self, stmt: ast.RollbackTo):
        self.session.rollback_to_savepoint(stmt.name)

    def _do_releasesavepoint(self, stmt: ast.ReleaseSavepoint):
        self.session.release_savepoint(stmt.name)

    def _do_preparetransaction(self, stmt: ast.PrepareTransaction):
        self.session.prepare_transaction(stmt.gid)

    def _do_commitprepared(self, stmt: ast.CommitPrepared):
        self.db.commit_prepared(stmt.gid)

    def _do_rollbackprepared(self, stmt: ast.RollbackPrepared):
        self.db.rollback_prepared(stmt.gid)

    def _do_locktable(self, stmt: ast.LockTable):
        try:
            mode = _LOCK_MODES[stmt.mode]
        except KeyError:
            raise SQLSyntaxError(f"unknown lock mode {stmt.mode!r}") from None
        self.session.lock_table(stmt.table, mode)

    def _do_vacuum(self, stmt: ast.Vacuum):
        self.db.vacuum(stmt.table)

    # -- planner statements --------------------------------------------------------
    def _do_analyze(self, stmt: ast.Analyze):
        return self.db.analyze(stmt.table)

    def _do_explain(self, stmt: ast.Explain):
        """EXPLAIN [ANALYZE]: returns the deterministic plan tree as a
        list of text lines (PostgreSQL's one-column result shape)."""
        inner = stmt.statement
        if isinstance(inner, ast.ExecuteStmt):
            entry = self._get_prepared(inner.name)
            args = tuple(eval_expr(arg, {}) for arg in inner.args)
            inner = bind_statement(entry.statement, args)
        node = self._plan_tree(inner)
        if node is None:
            raise SQLSyntaxError(
                f"cannot EXPLAIN a {type(inner).__name__} statement")
        if stmt.analyze:
            buf = self.db.buffer
            pages_before = buf.hits + buf.misses
            handler = getattr(self, "_do_" + type(inner).__name__.lower())
            result = handler(inner)
            node.actual_pages = (buf.hits + buf.misses) - pages_before
            node.actual_rows = (len(result) if isinstance(result, list)
                                else int(result or 0))
        return node.render()

    def _plan_tree(self, stmt):
        """The plan the executor would use for ``stmt`` (None when the
        statement kind is not plannable)."""
        from repro.engine.planner import PlanNode, explain_scan

        def scan_node(table: str, where) -> PlanNode:
            return explain_scan(self.db, self.db.relation(table),
                                compile_condition(where))

        if isinstance(stmt, ast.Select):
            if stmt.joins:
                node = self._join_plan_node(stmt)
                label = ",".join([stmt.table]
                                 + [j.table for j in stmt.joins])
            else:
                stmt = _dequalify_select(stmt)
                node = scan_node(stmt.table, stmt.where)
                label = stmt.table
            if stmt.group_by:
                node = PlanNode(
                    "HashAggregate", label,
                    detail="group by " + ", ".join(stmt.group_by),
                    children=[node])
                if stmt.order_by is not None:
                    node = PlanNode("Sort", label, children=[node])
                if stmt.limit is not None:
                    node = PlanNode("Limit", label, children=[node])
                return node
            if stmt.order_by is not None:
                node = PlanNode("Sort", label, children=[node])
            if any(item.kind == "aggregate" for item in stmt.items):
                node = PlanNode("Aggregate", label, children=[node])
            if stmt.limit is not None:
                node = PlanNode("Limit", label, children=[node])
            return node
        if isinstance(stmt, ast.Update):
            return PlanNode("Update", stmt.table,
                            children=[scan_node(stmt.table, stmt.where)])
        if isinstance(stmt, ast.Delete):
            return PlanNode("Delete", stmt.table,
                            children=[scan_node(stmt.table, stmt.where)])
        if isinstance(stmt, ast.Insert):
            return PlanNode("Insert", stmt.table)
        return None

    def _join_plan_node(self, stmt: ast.Select):
        """EXPLAIN subtree for a join query: the same _analyze_join /
        plan_join calls the executor makes, rendered as nested plan
        nodes (join condition + hash build side in the detail)."""
        from repro.engine.planner import PlanNode, explain_scan

        plan = self._analyze_join(stmt)
        t0 = plan.tables[0]
        node = explain_scan(self.db, plan.rels[t0], plan.scan_preds[t0])
        left_tables = [t0]
        for step in plan.steps:
            right_node = explain_scan(self.db, plan.rels[step.table],
                                      plan.scan_preds[step.table])
            choice = self._join_step_choice(plan, step, len(left_tables))
            details = []
            if step.l_col is not None:
                details.append(f"{step.l_owner}.{step.l_col} = "
                               f"{step.table}.{step.r_col}")
            if choice.algorithm == "hash":
                details.append(f"build={choice.build}")
            if step.residual is not None:
                details.append("with residual filter")
            kwargs: Dict[str, Any] = {}
            if choice.est_rows is not None and choice.cost is not None:
                kwargs.update(est_rows=choice.est_rows, est_pages=0.0,
                              cost=choice.cost)
            node = PlanNode(choice.node_name,
                            ",".join(left_tables + [step.table]),
                            source=choice.source,
                            detail=" ".join(details) or None,
                            children=[node, right_node], **kwargs)
            left_tables.append(step.table)
        return node

    # -- prepared statements -------------------------------------------------------
    def _do_preparestmt(self, stmt: ast.PrepareStmt):
        if stmt.name in self._prepared:
            raise UserError(
                f"prepared statement {stmt.name!r} already exists")
        if isinstance(stmt.statement,
                      (ast.PrepareStmt, ast.ExecuteStmt, ast.Explain)):
            raise SQLSyntaxError(
                f"cannot prepare a {type(stmt.statement).__name__} "
                f"statement")
        self._prepared[stmt.name] = PreparedStatement(stmt.name,
                                                      stmt.statement)

    def _do_executestmt(self, stmt: ast.ExecuteStmt):
        entry = self._get_prepared(stmt.name)
        args = tuple(eval_expr(arg, {}) for arg in stmt.args)
        bound = bind_statement(entry.statement, args)
        self._refresh_plan(entry, bound)
        handler = getattr(self, "_do_" + type(bound).__name__.lower())
        return handler(bound)

    def _do_deallocate(self, stmt: ast.Deallocate):
        if stmt.name is None:
            self._prepared.clear()
            return
        if self._prepared.pop(stmt.name, None) is None:
            raise UserError(
                f"prepared statement {stmt.name!r} does not exist")

    def _get_prepared(self, name: str) -> PreparedStatement:
        try:
            return self._prepared[name]
        except KeyError:
            raise UserError(
                f"prepared statement {name!r} does not exist") from None

    def _refresh_plan(self, entry: PreparedStatement, bound) -> None:
        """Re-derive the generic plan when the stats epoch moved
        (ANALYZE/DDL invalidation); otherwise reuse it untouched."""
        epoch = self.db.statscat.epoch
        if entry.plan is not None and entry.plan_epoch == epoch:
            return
        if isinstance(bound, (ast.Select, ast.Update, ast.Delete,
                              ast.Insert)):
            if entry.plan is not None:
                self._prepared_replans.inc()
            entry.plan = self._plan_tree(bound)
            entry.plan_epoch = epoch

    def prepared_plan(self, name: str):
        """The cached generic plan of a prepared statement (tests and
        introspection; None before the first EXECUTE)."""
        return self._get_prepared(name).plan
