"""SQL execution: compile ASTs onto the Session API.

The statement hot path is cached at two levels (see DESIGN.md, "Query
planning"):

* a per-session LRU **parse cache** (SQL text -> AST; the AST nodes
  are frozen dataclasses, so sharing them across executions is safe),
  behind ``PerfConfig.parse_cache``;
* **prepared statements** (``PREPARE name AS ... / EXECUTE name(...)``)
  whose generic plan is re-derived only when the stats epoch moved --
  ANALYZE and DDL bump the epoch, flushing stale plans exactly like
  PostgreSQL's plancache invalidation. The scan choice itself is
  additionally memoized in the engine-level plan cache
  (repro.engine.planner), which both cached and ad-hoc statements hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import predicate as P
from repro.engine.isolation import IsolationLevel
from repro.errors import UserError
from repro.locks.modes import LockMode
from repro.sql import ast
from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import parse

#: Parse-cache capacity (statement strings per session).
PARSE_CACHE_SIZE = 256

_ISOLATION = {
    "read committed": IsolationLevel.READ_COMMITTED,
    "repeatable read": IsolationLevel.REPEATABLE_READ,
    "serializable": IsolationLevel.SERIALIZABLE,
    "s2pl": IsolationLevel.S2PL,
}

_LOCK_MODES = {
    "ACCESS SHARE": LockMode.ACCESS_SHARE,
    "ROW SHARE": LockMode.ROW_SHARE,
    "ROW EXCLUSIVE": LockMode.ROW_EXCLUSIVE,
    "SHARE UPDATE EXCLUSIVE": LockMode.SHARE_UPDATE_EXCLUSIVE,
    "SHARE": LockMode.SHARE,
    "SHARE ROW EXCLUSIVE": LockMode.SHARE_ROW_EXCLUSIVE,
    "EXCLUSIVE": LockMode.EXCLUSIVE,
    "ACCESS EXCLUSIVE": LockMode.ACCESS_EXCLUSIVE,
}

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


def eval_expr(expr, row: Dict[str, Any]) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return row.get(expr.name)
    if isinstance(expr, ast.BinaryOp):
        left = eval_expr(expr.left, row)
        right = eval_expr(expr.right, row)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        raise SQLSyntaxError(f"unsupported operator {expr.op!r}")
    raise SQLSyntaxError(f"cannot evaluate {expr!r}")


def _is_const(expr) -> bool:
    return isinstance(expr, ast.Literal)


def compile_condition(cond) -> P.Predicate:
    """Compile to an engine predicate; sargable comparisons become the
    structured predicates the planner can turn into index scans,
    anything else becomes a Func filter (a sequential scan)."""
    if cond is None:
        return P.AlwaysTrue()
    if isinstance(cond, ast.Comparison):
        left, right, op = cond.left, cond.right, cond.op
        if _is_const(left) and isinstance(right, ast.ColumnRef):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            op = flip.get(op, op)
        if isinstance(left, ast.ColumnRef) and _is_const(right):
            value = right.value
            classes = {"=": P.Eq, "<>": P.Ne, "<": P.Lt, "<=": P.Le,
                       ">": P.Gt, ">=": P.Ge}
            return classes[op](left.name, value)
        compare = _COMPARATORS[op]
        return P.Func(lambda row, l=left, r=right, c=compare:
                      c(eval_expr(l, row), eval_expr(r, row)),
                      description=f"{left} {op} {right}")
    if isinstance(cond, ast.BetweenCond):
        if isinstance(cond.column, ast.ColumnRef) and _is_const(cond.lo) \
                and _is_const(cond.hi):
            return P.Between(cond.column.name, cond.lo.value, cond.hi.value)
        return P.Func(lambda row, c=cond:
                      eval_expr(c.lo, row) <= eval_expr(c.column, row)
                      <= eval_expr(c.hi, row))
    if isinstance(cond, ast.AndCond):
        return P.And(*(compile_condition(part) for part in cond.parts))
    if isinstance(cond, ast.OrCond):
        return P.Or(*(compile_condition(part) for part in cond.parts))
    if isinstance(cond, ast.NotCond):
        inner = compile_condition(cond.inner)
        return P.Func(lambda row, p=inner: not p.matches(row),
                      description=f"NOT {inner!r}")
    raise SQLSyntaxError(f"cannot compile condition {cond!r}")


# -- prepared-statement parameter binding ---------------------------------
def _bind_expr(expr, args: Tuple[Any, ...]):
    if isinstance(expr, ast.Param):
        if expr.index > len(args):
            raise UserError(
                f"there is no parameter ${expr.index} "
                f"({len(args)} supplied)")
        return ast.Literal(args[expr.index - 1])
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _bind_expr(expr.left, args),
                            _bind_expr(expr.right, args))
    return expr


def _bind_cond(cond, args: Tuple[Any, ...]):
    if cond is None:
        return None
    if isinstance(cond, ast.Comparison):
        return ast.Comparison(cond.op, _bind_expr(cond.left, args),
                              _bind_expr(cond.right, args))
    if isinstance(cond, ast.BetweenCond):
        return ast.BetweenCond(_bind_expr(cond.column, args),
                               _bind_expr(cond.lo, args),
                               _bind_expr(cond.hi, args))
    if isinstance(cond, ast.NotCond):
        return ast.NotCond(_bind_cond(cond.inner, args))
    if isinstance(cond, ast.AndCond):
        return ast.AndCond(tuple(_bind_cond(p, args) for p in cond.parts))
    if isinstance(cond, ast.OrCond):
        return ast.OrCond(tuple(_bind_cond(p, args) for p in cond.parts))
    return cond


def bind_statement(stmt, args: Tuple[Any, ...]):
    """Substitute $n parameters with the EXECUTE arguments, returning a
    parameter-free statement of the same shape."""
    if isinstance(stmt, ast.Select):
        return ast.Select(stmt.items, stmt.table,
                          _bind_cond(stmt.where, args), stmt.order_by,
                          stmt.descending, stmt.limit, stmt.for_update)
    if isinstance(stmt, ast.Update):
        assignments = tuple((col, _bind_expr(expr, args))
                            for col, expr in stmt.assignments)
        return ast.Update(stmt.table, assignments,
                          _bind_cond(stmt.where, args))
    if isinstance(stmt, ast.Delete):
        return ast.Delete(stmt.table, _bind_cond(stmt.where, args))
    if isinstance(stmt, ast.Insert):
        rows = tuple(tuple(_bind_expr(v, args) for v in row)
                     for row in stmt.rows)
        return ast.Insert(stmt.table, stmt.columns, rows)
    if args:
        raise UserError(
            f"{type(stmt).__name__} statements take no parameters")
    return stmt


@dataclass
class PreparedStatement:
    """One PREPARE'd statement and its cached generic plan."""

    name: str
    statement: Any
    #: Stats epoch the cached plan was derived under; a mismatch at
    #: EXECUTE time forces a replan (ANALYZE/DDL invalidation).
    plan_epoch: int = -1
    #: The generic plan summary (a repro.engine.planner.PlanNode) for
    #: plannable statements; None until first EXECUTE or after
    #: invalidation.
    plan: Any = None


class SQLSession:
    """Execute SQL text against one engine session.

    ``execute`` returns a list of row dicts for SELECT, an affected-row
    count for INSERT/UPDATE/DELETE, and None for other statements.
    """

    def __init__(self, session) -> None:
        self.session = session
        self.db = session.db
        self._use_parse_cache = self.db.config.perf.parse_cache
        self._parse_cache: "OrderedDict[str, Any]" = OrderedDict()
        metrics = self.db.obs.metrics
        self._parse_hits = metrics.counter("perf.parse_cache_hits")
        self._parse_misses = metrics.counter("perf.parse_cache_misses")
        self._prepared_replans = metrics.counter("sql.prepared_replans")
        self._prepared: Dict[str, PreparedStatement] = {}

    def execute(self, sql: str):
        statement = self._parse(sql)
        handler = getattr(self, "_do_" + type(statement).__name__.lower())
        return handler(statement)

    def _parse(self, sql: str):
        """Parse with the LRU statement cache (ASTs are frozen, so a
        cached statement is safe to re-execute)."""
        if not self._use_parse_cache:
            return parse(sql)
        cached = self._parse_cache.get(sql)
        if cached is not None:
            self._parse_cache.move_to_end(sql)
            self._parse_hits.inc()
            return cached
        self._parse_misses.inc()
        statement = parse(sql)
        self._parse_cache[sql] = statement
        if len(self._parse_cache) > PARSE_CACHE_SIZE:
            self._parse_cache.popitem(last=False)
        return statement

    # -- DML -----------------------------------------------------------------
    def _do_select(self, stmt: ast.Select):
        where = compile_condition(stmt.where)
        if stmt.for_update:
            rows = self.session.select_for_update(stmt.table, where)
        else:
            rows = self.session.select(stmt.table, where)
        if stmt.order_by is not None:
            rows.sort(key=lambda r: r.get(stmt.order_by),
                      reverse=stmt.descending)
        if any(item.kind == "aggregate" for item in stmt.items):
            return [self._aggregate_row(stmt.items, rows)]
        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        if all(item.kind == "star" for item in stmt.items):
            return rows
        projected = []
        for row in rows:
            out: Dict[str, Any] = {}
            for item in stmt.items:
                if item.kind == "star":
                    out.update(row)
                else:
                    out[item.alias or item.column] = row.get(item.column)
            projected.append(out)
        return projected

    @staticmethod
    def _aggregate_row(items, rows) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for item in items:
            if item.kind != "aggregate":
                raise SQLSyntaxError(
                    "cannot mix aggregates with plain columns "
                    "(no GROUP BY support)")
            func = item.func
            name = item.alias or (f"{func.lower()}"
                                  + (f"_{item.column}" if item.column else ""))
            if func == "COUNT":
                value = (len(rows) if item.column is None else
                         sum(1 for r in rows if r.get(item.column)
                             is not None))
            else:
                values = [r.get(item.column) for r in rows
                          if r.get(item.column) is not None]
                if not values:
                    value = None
                elif func == "SUM":
                    value = sum(values)
                elif func == "MIN":
                    value = min(values)
                elif func == "MAX":
                    value = max(values)
                elif func == "AVG":
                    value = sum(values) / len(values)
                else:  # pragma: no cover - parser restricts
                    raise SQLSyntaxError(f"unknown aggregate {func}")
            out[name] = value
        return out

    def _do_insert(self, stmt: ast.Insert) -> int:
        count = 0
        for values in stmt.rows:
            row = {column: eval_expr(value, {})
                   for column, value in zip(stmt.columns, values)}
            self.session.insert(stmt.table, row)
            count += 1
        return count

    def _do_update(self, stmt: ast.Update) -> int:
        where = compile_condition(stmt.where)
        assignments = stmt.assignments

        def updater(row: Dict[str, Any]) -> Dict[str, Any]:
            return {column: eval_expr(expr, row)
                    for column, expr in assignments}

        return self.session.update(stmt.table, where, updater)

    def _do_delete(self, stmt: ast.Delete) -> int:
        return self.session.delete(stmt.table, compile_condition(stmt.where))

    # -- DDL --------------------------------------------------------------------
    def _do_createtable(self, stmt: ast.CreateTable):
        self.db.create_table(stmt.name, stmt.columns, key=stmt.primary_key)

    def _do_createindex(self, stmt: ast.CreateIndex):
        self.db.create_index(stmt.table, stmt.column, name=stmt.name,
                             unique=stmt.unique, using=stmt.using)

    def _do_dropindex(self, stmt: ast.DropIndex):
        self.session.drop_index(stmt.name)

    # -- transaction control -------------------------------------------------------
    def _do_begin(self, stmt: ast.Begin):
        isolation = _ISOLATION[stmt.isolation] if stmt.isolation else None
        self.session.begin(isolation, read_only=stmt.read_only,
                           deferrable=stmt.deferrable)

    def _do_commit(self, stmt: ast.Commit):
        self.session.commit()

    def _do_rollback(self, stmt: ast.Rollback):
        self.session.rollback()

    def _do_savepoint(self, stmt: ast.Savepoint):
        self.session.savepoint(stmt.name)

    def _do_rollbackto(self, stmt: ast.RollbackTo):
        self.session.rollback_to_savepoint(stmt.name)

    def _do_releasesavepoint(self, stmt: ast.ReleaseSavepoint):
        self.session.release_savepoint(stmt.name)

    def _do_preparetransaction(self, stmt: ast.PrepareTransaction):
        self.session.prepare_transaction(stmt.gid)

    def _do_commitprepared(self, stmt: ast.CommitPrepared):
        self.db.commit_prepared(stmt.gid)

    def _do_rollbackprepared(self, stmt: ast.RollbackPrepared):
        self.db.rollback_prepared(stmt.gid)

    def _do_locktable(self, stmt: ast.LockTable):
        try:
            mode = _LOCK_MODES[stmt.mode]
        except KeyError:
            raise SQLSyntaxError(f"unknown lock mode {stmt.mode!r}") from None
        self.session.lock_table(stmt.table, mode)

    def _do_vacuum(self, stmt: ast.Vacuum):
        self.db.vacuum(stmt.table)

    # -- planner statements --------------------------------------------------------
    def _do_analyze(self, stmt: ast.Analyze):
        return self.db.analyze(stmt.table)

    def _do_explain(self, stmt: ast.Explain):
        """EXPLAIN [ANALYZE]: returns the deterministic plan tree as a
        list of text lines (PostgreSQL's one-column result shape)."""
        inner = stmt.statement
        if isinstance(inner, ast.ExecuteStmt):
            entry = self._get_prepared(inner.name)
            args = tuple(eval_expr(arg, {}) for arg in inner.args)
            inner = bind_statement(entry.statement, args)
        node = self._plan_tree(inner)
        if node is None:
            raise SQLSyntaxError(
                f"cannot EXPLAIN a {type(inner).__name__} statement")
        if stmt.analyze:
            buf = self.db.buffer
            pages_before = buf.hits + buf.misses
            handler = getattr(self, "_do_" + type(inner).__name__.lower())
            result = handler(inner)
            node.actual_pages = (buf.hits + buf.misses) - pages_before
            node.actual_rows = (len(result) if isinstance(result, list)
                                else int(result or 0))
        return node.render()

    def _plan_tree(self, stmt):
        """The plan the executor would use for ``stmt`` (None when the
        statement kind is not plannable)."""
        from repro.engine.planner import PlanNode, explain_scan

        def scan_node(table: str, where) -> PlanNode:
            return explain_scan(self.db, self.db.relation(table),
                                compile_condition(where))

        if isinstance(stmt, ast.Select):
            node = scan_node(stmt.table, stmt.where)
            if stmt.order_by is not None:
                node = PlanNode("Sort", stmt.table, children=[node])
            if any(item.kind == "aggregate" for item in stmt.items):
                node = PlanNode("Aggregate", stmt.table, children=[node])
            if stmt.limit is not None:
                node = PlanNode("Limit", stmt.table, children=[node])
            return node
        if isinstance(stmt, ast.Update):
            return PlanNode("Update", stmt.table,
                            children=[scan_node(stmt.table, stmt.where)])
        if isinstance(stmt, ast.Delete):
            return PlanNode("Delete", stmt.table,
                            children=[scan_node(stmt.table, stmt.where)])
        if isinstance(stmt, ast.Insert):
            return PlanNode("Insert", stmt.table)
        return None

    # -- prepared statements -------------------------------------------------------
    def _do_preparestmt(self, stmt: ast.PrepareStmt):
        if stmt.name in self._prepared:
            raise UserError(
                f"prepared statement {stmt.name!r} already exists")
        if isinstance(stmt.statement,
                      (ast.PrepareStmt, ast.ExecuteStmt, ast.Explain)):
            raise SQLSyntaxError(
                f"cannot prepare a {type(stmt.statement).__name__} "
                f"statement")
        self._prepared[stmt.name] = PreparedStatement(stmt.name,
                                                      stmt.statement)

    def _do_executestmt(self, stmt: ast.ExecuteStmt):
        entry = self._get_prepared(stmt.name)
        args = tuple(eval_expr(arg, {}) for arg in stmt.args)
        bound = bind_statement(entry.statement, args)
        self._refresh_plan(entry, bound)
        handler = getattr(self, "_do_" + type(bound).__name__.lower())
        return handler(bound)

    def _do_deallocate(self, stmt: ast.Deallocate):
        if stmt.name is None:
            self._prepared.clear()
            return
        if self._prepared.pop(stmt.name, None) is None:
            raise UserError(
                f"prepared statement {stmt.name!r} does not exist")

    def _get_prepared(self, name: str) -> PreparedStatement:
        try:
            return self._prepared[name]
        except KeyError:
            raise UserError(
                f"prepared statement {name!r} does not exist") from None

    def _refresh_plan(self, entry: PreparedStatement, bound) -> None:
        """Re-derive the generic plan when the stats epoch moved
        (ANALYZE/DDL invalidation); otherwise reuse it untouched."""
        epoch = self.db.statscat.epoch
        if entry.plan is not None and entry.plan_epoch == epoch:
            return
        if isinstance(bound, (ast.Select, ast.Update, ast.Delete,
                              ast.Insert)):
            if entry.plan is not None:
                self._prepared_replans.inc()
            entry.plan = self._plan_tree(bound)
            entry.plan_epoch = epoch

    def prepared_plan(self, name: str):
        """The cached generic plan of a prepared statement (tests and
        introspection; None before the first EXECUTE)."""
        return self._get_prepared(name).plan
