"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sql import ast
from repro.sql.lexer import SQLSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise SQLSyntaxError(
                f"expected {' or '.join(names)}, got {self.current.value!r}")
        return self.advance()

    def accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self.current.is_symbol(*symbols):
            return self.advance()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise SQLSyntaxError(
                f"expected {symbol!r}, got {self.current.value!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind == "ident":
            return self.advance().value
        # Non-reserved keywords may serve as identifiers (e.g. a column
        # named "count" would be unusual; keep it strict instead).
        raise SQLSyntaxError(f"expected identifier, got "
                             f"{self.current.value!r}")

    def expect_column(self) -> str:
        """An optionally table-qualified column: ``c`` or ``t.c``
        (stored as the dotted string)."""
        name = self.expect_ident()
        if self.accept_symbol("."):
            name = name + "." + self.expect_ident()
        return name

    def expect_string(self) -> str:
        if self.current.kind != "string":
            raise SQLSyntaxError(f"expected string literal, got "
                                 f"{self.current.value!r}")
        return self.advance().value

    def expect_end(self) -> None:
        self.accept_symbol(";")
        if self.current.kind != "end":
            raise SQLSyntaxError(
                f"unexpected trailing input: {self.current.value!r}")

    # -- entry point ------------------------------------------------------------
    def parse_statement(self):
        token = self.current
        if token.is_keyword("SELECT"):
            return self.select()
        if token.is_keyword("INSERT"):
            return self.insert()
        if token.is_keyword("UPDATE"):
            return self.update()
        if token.is_keyword("DELETE"):
            return self.delete()
        if token.is_keyword("CREATE"):
            return self.create()
        if token.is_keyword("DROP"):
            return self.drop()
        if token.is_keyword("BEGIN"):
            return self.begin()
        if token.is_keyword("COMMIT"):
            self.advance()
            if self.accept_keyword("PREPARED"):
                gid = self.expect_string()
                self.expect_end()
                return ast.CommitPrepared(gid)
            self.expect_end()
            return ast.Commit()
        if token.is_keyword("ROLLBACK"):
            return self.rollback()
        if token.is_keyword("SAVEPOINT"):
            self.advance()
            name = self.expect_ident()
            self.expect_end()
            return ast.Savepoint(name)
        if token.is_keyword("RELEASE"):
            self.advance()
            self.accept_keyword("SAVEPOINT")
            name = self.expect_ident()
            self.expect_end()
            return ast.ReleaseSavepoint(name)
        if token.is_keyword("PREPARE"):
            self.advance()
            if self.accept_keyword("TRANSACTION"):
                gid = self.expect_string()
                self.expect_end()
                return ast.PrepareTransaction(gid)
            name = self.expect_ident()
            self.expect_keyword("AS")
            inner = self.parse_statement()  # consumes to end
            return ast.PrepareStmt(name, inner)
        if token.is_keyword("EXECUTE"):
            return self.execute_stmt()
        if token.is_keyword("DEALLOCATE"):
            self.advance()
            self.accept_keyword("PREPARE")
            if self.accept_keyword("ALL"):
                self.expect_end()
                return ast.Deallocate(None)
            name = self.expect_ident()
            self.expect_end()
            return ast.Deallocate(name)
        if token.is_keyword("ANALYZE"):
            self.advance()
            table = None
            if self.current.kind == "ident":
                table = self.advance().value
            self.expect_end()
            return ast.Analyze(table)
        if token.is_keyword("EXPLAIN"):
            self.advance()
            analyze = bool(self.accept_keyword("ANALYZE"))
            inner = self.parse_statement()  # consumes to end
            return ast.Explain(inner, analyze)
        if token.is_keyword("LOCK"):
            return self.lock_table()
        if token.is_keyword("VACUUM"):
            self.advance()
            table = None
            if self.current.kind == "ident":
                table = self.advance().value
            self.expect_end()
            return ast.Vacuum(table)
        raise SQLSyntaxError(f"cannot parse statement starting with "
                             f"{token.value!r}")

    def execute_stmt(self):
        self.expect_keyword("EXECUTE")
        name = self.expect_ident()
        args = []
        if self.accept_symbol("("):
            if not self.accept_symbol(")"):
                args.append(self.expr())
                while self.accept_symbol(","):
                    args.append(self.expr())
                self.expect_symbol(")")
        self.expect_end()
        return ast.ExecuteStmt(name, tuple(args))

    # -- expressions --------------------------------------------------------------
    def expr(self):
        left = self.term()
        while self.current.is_symbol("+", "-"):
            op = self.advance().value
            right = self.term()
            left = ast.BinaryOp(op, left, right)
        return left

    def term(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_symbol("-"):
            self.advance()
            inner = self.term()
            if isinstance(inner, ast.Literal):
                return ast.Literal(-inner.value)
            return ast.BinaryOp("-", ast.Literal(0), inner)
        if token.kind == "param":
            self.advance()
            if token.value < 1:
                raise SQLSyntaxError("parameters are numbered from $1")
            return ast.Param(token.value)
        if token.kind == "ident":
            self.advance()
            name = token.value
            if self.accept_symbol("."):
                name = name + "." + self.expect_ident()
            return ast.ColumnRef(name)
        if token.is_keyword("COUNT", "SUM", "MIN", "MAX", "AVG"):
            # An aggregate inside a condition (HAVING) refers to the
            # matching SELECT-list aggregate by its output name:
            # COUNT(*) -> "count", SUM(x) -> "sum_x".
            func = self.advance().value
            self.expect_symbol("(")
            if self.accept_symbol("*"):
                if func != "COUNT":
                    raise SQLSyntaxError(f"{func}(*) is not valid")
                column = None
            else:
                column = self.expect_column()
            self.expect_symbol(")")
            name = func.lower() + (f"_{column}" if column else "")
            return ast.ColumnRef(name)
        if token.is_symbol("("):
            self.advance()
            inner = self.expr()
            if self.accept_symbol(","):
                # Tuple literal, e.g. an interval value: (9, 17).
                parts = [inner, self.expr()]
                while self.accept_symbol(","):
                    parts.append(self.expr())
                self.expect_symbol(")")
                values = []
                for part in parts:
                    if not isinstance(part, ast.Literal):
                        raise SQLSyntaxError(
                            "tuple literals must contain constants")
                    values.append(part.value)
                return ast.Literal(tuple(values))
            self.expect_symbol(")")
            return inner
        raise SQLSyntaxError(f"expected expression, got {token.value!r}")

    # -- conditions ------------------------------------------------------------------
    def condition(self):
        return self.or_cond()

    def or_cond(self):
        parts = [self.and_cond()]
        while self.accept_keyword("OR"):
            parts.append(self.and_cond())
        return parts[0] if len(parts) == 1 else ast.OrCond(tuple(parts))

    def and_cond(self):
        parts = [self.primary_cond()]
        while self.accept_keyword("AND"):
            parts.append(self.primary_cond())
        return parts[0] if len(parts) == 1 else ast.AndCond(tuple(parts))

    def primary_cond(self):
        if self.accept_keyword("NOT"):
            return ast.NotCond(self.primary_cond())
        if self.current.is_symbol("("):
            # Could be a parenthesized condition; try it.
            save = self.pos
            self.advance()
            try:
                inner = self.condition()
                self.expect_symbol(")")
                return inner
            except SQLSyntaxError:
                self.pos = save
        left = self.expr()
        if self.accept_keyword("BETWEEN"):
            lo = self.expr()
            self.expect_keyword("AND")
            hi = self.expr()
            return ast.BetweenCond(left, lo, hi)
        token = self.current
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            right = self.expr()
            return ast.Comparison(op, left, right)
        raise SQLSyntaxError(f"expected comparison, got {token.value!r}")

    # -- SELECT -----------------------------------------------------------------------
    def select(self):
        self.expect_keyword("SELECT")
        items = [self.select_item()]
        while self.accept_symbol(","):
            items.append(self.select_item())
        self.expect_keyword("FROM")
        table = self.expect_ident()
        joins = []
        while True:
            if self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
            elif not self.accept_keyword("JOIN"):
                break
            join_table = self.expect_ident()
            self.expect_keyword("ON")
            joins.append(ast.Join(join_table, self.condition()))
        where = self.condition() if self.accept_keyword("WHERE") else None
        group_by: list = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expect_column())
            while self.accept_symbol(","):
                group_by.append(self.expect_column())
            if self.accept_keyword("HAVING"):
                having = self.condition()
        order_by, descending = None, False
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self.expect_column()
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SQLSyntaxError("LIMIT expects an integer")
            limit = token.value
        for_update = False
        if self.accept_keyword("FOR"):
            self.expect_keyword("UPDATE")
            for_update = True
        self.expect_end()
        return ast.Select(tuple(items), table, where, order_by, descending,
                          limit, for_update, tuple(joins), tuple(group_by),
                          having)

    def select_item(self):
        token = self.current
        if token.is_symbol("*"):
            self.advance()
            return ast.SelectItem("star")
        if token.is_keyword("COUNT", "SUM", "MIN", "MAX", "AVG"):
            func = self.advance().value
            self.expect_symbol("(")
            if self.accept_symbol("*"):
                column = None
                if func != "COUNT":
                    raise SQLSyntaxError(f"{func}(*) is not valid")
            else:
                column = self.expect_column()
            self.expect_symbol(")")
            alias = self.expect_ident() if self.accept_keyword("AS") else None
            return ast.SelectItem("aggregate", column=column, func=func,
                                  alias=alias)
        column = self.expect_column()
        alias = self.expect_ident() if self.accept_keyword("AS") else None
        return ast.SelectItem("column", column=column, alias=alias)

    # -- INSERT / UPDATE / DELETE -------------------------------------------------------
    def insert(self):
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self.expect_ident()]
        while self.accept_symbol(","):
            columns.append(self.expect_ident())
        self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows = [self.value_row(len(columns))]
        while self.accept_symbol(","):
            rows.append(self.value_row(len(columns)))
        self.expect_end()
        return ast.Insert(table, tuple(columns), tuple(rows))

    def value_row(self, arity: int) -> Tuple:
        self.expect_symbol("(")
        values = [self.expr()]
        while self.accept_symbol(","):
            values.append(self.expr())
        self.expect_symbol(")")
        if len(values) != arity:
            raise SQLSyntaxError(
                f"INSERT has {arity} columns but {len(values)} values")
        return tuple(values)

    def update(self):
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.assignment()]
        while self.accept_symbol(","):
            assignments.append(self.assignment())
        where = self.condition() if self.accept_keyword("WHERE") else None
        self.expect_end()
        return ast.Update(table, tuple(assignments), where)

    def assignment(self):
        column = self.expect_ident()
        self.expect_symbol("=")
        return (column, self.expr())

    def delete(self):
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.condition() if self.accept_keyword("WHERE") else None
        self.expect_end()
        return ast.Delete(table, where)

    # -- DDL ---------------------------------------------------------------------------
    def create(self):
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            name = self.expect_ident()
            self.expect_symbol("(")
            columns, primary = [], None
            while True:
                column = self.expect_ident()
                # Optional type name, ignored (dynamically typed rows).
                if self.current.kind == "ident":
                    self.advance()
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    primary = column
                columns.append(column)
                if not self.accept_symbol(","):
                    break
            self.expect_symbol(")")
            self.expect_end()
            return ast.CreateTable(name, tuple(columns), primary)
        unique = bool(self.accept_keyword("UNIQUE"))
        self.expect_keyword("INDEX")
        name = None
        if self.current.kind == "ident":
            name = self.advance().value
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_symbol("(")
        column = self.expect_ident()
        self.expect_symbol(")")
        using = "btree"
        if self.accept_keyword("USING"):
            using = self.expect_keyword("BTREE", "HASH", "GIST").value.lower()
        self.expect_end()
        return ast.CreateIndex(table, column, name, unique, using)

    def drop(self):
        self.expect_keyword("DROP")
        self.expect_keyword("INDEX")
        name = self.expect_ident()
        self.expect_end()
        return ast.DropIndex(name)

    # -- transaction control ----------------------------------------------------------
    def begin(self):
        self.expect_keyword("BEGIN")
        self.accept_keyword("TRANSACTION")
        isolation = None
        read_only = False
        deferrable = False
        while True:
            self.accept_symbol(",")
            if self.accept_keyword("ISOLATION"):
                self.expect_keyword("LEVEL")
                if self.accept_keyword("SERIALIZABLE"):
                    isolation = "serializable"
                elif self.accept_keyword("REPEATABLE"):
                    self.expect_keyword("READ")
                    isolation = "repeatable read"
                elif self.accept_keyword("READ"):
                    self.expect_keyword("COMMITTED")
                    isolation = "read committed"
                elif self.accept_keyword("S2PL"):
                    isolation = "s2pl"
                else:
                    raise SQLSyntaxError("unknown isolation level")
                continue
            if self.accept_keyword("READ"):
                self.expect_keyword("ONLY")
                read_only = True
                continue
            if self.accept_keyword("DEFERRABLE"):
                deferrable = True
                continue
            break
        self.expect_end()
        return ast.Begin(isolation, read_only, deferrable)

    def rollback(self):
        self.expect_keyword("ROLLBACK")
        if self.accept_keyword("PREPARED"):
            gid = self.expect_string()
            self.expect_end()
            return ast.RollbackPrepared(gid)
        if self.accept_keyword("TO"):
            self.accept_keyword("SAVEPOINT")
            name = self.expect_ident()
            self.expect_end()
            return ast.RollbackTo(name)
        self.expect_end()
        return ast.Rollback()

    def lock_table(self):
        self.expect_keyword("LOCK")
        self.expect_keyword("TABLE")
        table = self.expect_ident()
        mode = "ACCESS EXCLUSIVE"
        if self.accept_keyword("IN"):
            words = []
            while not self.current.is_keyword("MODE"):
                token = self.advance()
                if token.kind not in ("keyword", "ident"):
                    raise SQLSyntaxError("bad lock mode")
                words.append(str(token.value).upper())
            self.expect_keyword("MODE")
            mode = " ".join(words)
        self.expect_end()
        return ast.LockTable(table, mode)


def parse(sql: str):
    """Parse one SQL statement into its AST node."""
    return _Parser(tokenize(sql)).parse_statement()
