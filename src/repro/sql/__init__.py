"""A small SQL front end.

The paper's case for serializability leans on *ad hoc* queries
(section 2.2): administrators typing SQL at psql can create anomalies
no static analysis anticipated. This package provides enough SQL to
write every example in the paper as SQL text:

* DDL: CREATE TABLE / CREATE [UNIQUE] INDEX ... USING {BTREE|HASH} /
  DROP INDEX;
* transactions: BEGIN [ISOLATION LEVEL ...] [READ ONLY [, DEFERRABLE]],
  COMMIT, ROLLBACK, SAVEPOINT / ROLLBACK TO / RELEASE, PREPARE
  TRANSACTION / COMMIT PREPARED / ROLLBACK PREPARED, LOCK TABLE;
* DML: INSERT, UPDATE (with column arithmetic), DELETE, SELECT with
  WHERE / ORDER BY / LIMIT / FOR UPDATE and the aggregates COUNT, SUM,
  MIN, MAX, AVG;
* VACUUM.

Usage::

    from repro.sql import SQLSession
    sql = SQLSession(db.session())
    sql.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    rows = sql.execute("SELECT COUNT(*) FROM doctors WHERE oncall = TRUE")
"""

from repro.sql.lexer import tokenize, Token, SQLSyntaxError
from repro.sql.parser import parse
from repro.sql.executor import SQLSession

__all__ = ["tokenize", "Token", "SQLSyntaxError", "parse", "SQLSession"]
