"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.errors import UserError


class SQLSyntaxError(UserError):
    sqlstate = "42601"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE", "ON", "USING", "DROP",
    "BEGIN", "COMMIT", "ROLLBACK", "TO", "SAVEPOINT", "RELEASE", "PREPARE",
    "PREPARED", "TRANSACTION", "ISOLATION", "LEVEL", "READ", "COMMITTED",
    "REPEATABLE", "SERIALIZABLE", "ONLY", "DEFERRABLE", "LOCK", "IN", "MODE",
    "AND", "OR", "NOT", "BETWEEN", "TRUE", "FALSE", "NULL", "ORDER", "BY",
    "ASC", "DESC", "LIMIT", "FOR", "COUNT", "SUM", "MIN", "MAX", "AVG",
    "PRIMARY", "KEY", "VACUUM", "AS", "BTREE", "HASH", "ACCESS", "SHARE",
    "ROW", "EXCLUSIVE", "S2PL", "GIST", "ANALYZE", "EXPLAIN", "EXECUTE",
    "DEALLOCATE", "ALL", "JOIN", "INNER", "GROUP", "HAVING",
}

SYMBOLS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", "*", "+",
           "-", ";", ".")


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | symbol | end
    value: Any
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "symbol" and self.value in symbols


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string at {i}")
                if text[j] == "'":
                    if text[j:j + 2] == "''":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch == "$" and i + 1 < n and text[i + 1].isdigit():
            # Prepared-statement parameter: $1, $2, ...
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("param", int(text[i + 1:j]), i))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "."
                                                   and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            literal = text[i:j]
            value = float(literal) if seen_dot else int(literal)
            tokens.append(Token("number", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("end", None, n))
    return tokens
