"""SQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# -- expressions ---------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic: col + 1, col - col, ..."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Param:
    """Prepared-statement parameter ``$n`` (1-based)."""

    index: int


Expr = Any  # Literal | ColumnRef | BinaryOp | Param


# -- conditions -----------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    op: str  # = <> < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BetweenCond:
    column: Expr
    lo: Expr
    hi: Expr


@dataclass(frozen=True)
class NotCond:
    inner: "Cond"


@dataclass(frozen=True)
class AndCond:
    parts: Tuple["Cond", ...]


@dataclass(frozen=True)
class OrCond:
    parts: Tuple["Cond", ...]


Cond = Any


# -- statements --------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """A projection item: column, *, or aggregate."""

    kind: str  # column | star | aggregate
    column: Optional[str] = None
    func: Optional[str] = None  # COUNT | SUM | MIN | MAX | AVG
    alias: Optional[str] = None


@dataclass(frozen=True)
class Join:
    """One INNER JOIN clause: ``JOIN table ON cond``."""

    table: str
    on: Cond


@dataclass(frozen=True)
class Select:
    items: Tuple[SelectItem, ...]
    table: str
    where: Optional[Cond]
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    for_update: bool = False
    #: INNER JOIN clauses in FROM order (left-deep join tree).
    joins: Tuple[Join, ...] = ()
    #: GROUP BY columns (possibly table-qualified).
    group_by: Tuple[str, ...] = ()
    #: HAVING condition over group columns and aggregate outputs.
    having: Optional[Cond] = None


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Cond]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Cond]


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[str, ...]
    primary_key: Optional[str]


@dataclass(frozen=True)
class CreateIndex:
    table: str
    column: str
    name: Optional[str]
    unique: bool
    using: str  # btree | hash


@dataclass(frozen=True)
class DropIndex:
    name: str


@dataclass(frozen=True)
class Begin:
    isolation: Optional[str]  # read committed|repeatable read|serializable|s2pl
    read_only: bool
    deferrable: bool


@dataclass(frozen=True)
class Commit:
    pass


@dataclass(frozen=True)
class Rollback:
    pass


@dataclass(frozen=True)
class Savepoint:
    name: str


@dataclass(frozen=True)
class RollbackTo:
    name: str


@dataclass(frozen=True)
class ReleaseSavepoint:
    name: str


@dataclass(frozen=True)
class PrepareTransaction:
    gid: str


@dataclass(frozen=True)
class CommitPrepared:
    gid: str


@dataclass(frozen=True)
class RollbackPrepared:
    gid: str


@dataclass(frozen=True)
class LockTable:
    table: str
    mode: str  # e.g. "ACCESS EXCLUSIVE"


@dataclass(frozen=True)
class Vacuum:
    table: Optional[str]


@dataclass(frozen=True)
class Analyze:
    """ANALYZE [table]: collect planner statistics."""

    table: Optional[str]


@dataclass(frozen=True)
class Explain:
    """EXPLAIN [ANALYZE] <statement>."""

    statement: Any
    analyze: bool = False


@dataclass(frozen=True)
class PrepareStmt:
    """PREPARE name AS <statement> (may contain $n parameters)."""

    name: str
    statement: Any


@dataclass(frozen=True)
class ExecuteStmt:
    """EXECUTE name(arg, ...)."""

    name: str
    args: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Deallocate:
    """DEALLOCATE [PREPARE] name | DEALLOCATE ALL."""

    name: Optional[str]  # None = ALL
