"""Hash index: equality-only lookups, no predicate-lock support.

PostgreSQL 9.1 shipped SSI with predicate locking only for B+-trees;
for other AMs it "falls back on acquiring a relation-level lock on the
index whenever it is accessed" (paper section 7.4). This AM exists to
exercise that fallback path: ``supports_predicate_locks`` is False, so
the engine takes a relation-granularity SIREAD lock on the index for
every scan through it, and writers inserting into the index check that
relation-level lock.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.index.base import IndexAM, InsertResult, ScanResult
from repro.storage.tuple import TID


class HashIndex(IndexAM):
    supports_predicate_locks = False
    ordered = False

    def __init__(self, oid: int, name: str, column: str,
                 unique: bool = False) -> None:
        super().__init__(oid, name, column, unique)
        self._buckets: Dict[Any, List[TID]] = {}
        self._count = 0

    def insert_entry(self, key: Any, tid: TID) -> InsertResult:
        bucket = self._buckets.setdefault(key, [])
        if tid not in bucket:
            bucket.append(tid)
            self._count += 1
        return InsertResult()

    def remove_entry(self, key: Any, tid: TID) -> None:
        bucket = self._buckets.get(key)
        if bucket and tid in bucket:
            bucket.remove(tid)
            self._count -= 1
            if not bucket:
                del self._buckets[key]

    def search(self, key: Any) -> ScanResult:
        return ScanResult(tids=list(self._buckets.get(key, ())))

    def range_search(self, lo: Any, hi: Any, lo_incl: bool = True,
                     hi_incl: bool = True) -> ScanResult:
        raise NotImplementedError("hash indexes support only equality lookups")

    def entry_count(self) -> int:
        return self._count
