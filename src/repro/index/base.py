"""Index access method interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.storage.tuple import TID


@dataclass
class InsertResult:
    """What an index insert touched, for SSI's conflict-in checks.

    Attributes:
        leaf_pages: index page numbers where the new entry landed
            (page-granularity locking).
        splits: (old_page, new_page) pairs for any page splits; the SSI
            lock manager copies predicate locks from old to new so gap
            locks keep covering the moved key range.
        key: the inserted key (next-key locking).
        successor_key: smallest pre-existing key greater than ``key``
            (the guardian of the gap the insert lands in), or None.
        has_successor: False when the insert extends the right edge of
            the key space (the +infinity gap).
        key_existed: the key already had entries before this insert.
    """

    leaf_pages: List[int] = field(default_factory=list)
    splits: List[Tuple[int, int]] = field(default_factory=list)
    key: Any = None
    successor_key: Any = None
    has_successor: bool = False
    key_existed: bool = False


@dataclass
class ScanResult:
    """What an index scan returned and which pages it visited.

    ``visited_pages`` is non-empty even for empty results: the page
    where matching keys would live is the phantom-detection gap lock
    target. For next-key locking, ``matched_keys`` plus ``next_key``
    (the first key beyond the scanned range; ``has_next`` False means
    the range extends to +infinity) carry the same information at key
    granularity.
    """

    tids: List[TID] = field(default_factory=list)
    visited_pages: List[int] = field(default_factory=list)
    matched_keys: List[Any] = field(default_factory=list)
    next_key: Any = None
    has_next: bool = False
    #: False when the scan's inclusive upper bound was itself matched:
    #: the lock on that key already guards the range's right edge, so
    #: no gap guard beyond it is needed (ARIES/KVL refinement).
    guard_needed: bool = True


class IndexAM(abc.ABC):
    """Duck-typed contract every index access method satisfies."""

    #: Whether the AM supports page-granularity predicate (SIREAD)
    #: locking. If False, SSI falls back to locking the whole index
    #: relation (paper section 7.4).
    supports_predicate_locks: bool = True
    #: Whether the AM supports range scans (planner hint).
    ordered: bool = True
    #: Whether the AM's key space is linearly ordered, making next-key
    #: locking applicable (B+-trees only).
    supports_key_locking: bool = False

    def __init__(self, oid: int, name: str, column: str,
                 unique: bool = False) -> None:
        self.oid = oid
        self.name = name
        self.column = column
        self.unique = unique

    @abc.abstractmethod
    def insert_entry(self, key: Any, tid: TID) -> InsertResult:
        """Add (key, tid); duplicates of (key, tid) are idempotent."""

    @abc.abstractmethod
    def remove_entry(self, key: Any, tid: TID) -> None:
        """Drop (key, tid) if present (VACUUM cleanup)."""

    @abc.abstractmethod
    def search(self, key: Any) -> ScanResult:
        """All TIDs indexed under exactly ``key``."""

    @abc.abstractmethod
    def range_search(self, lo: Any, hi: Any, lo_incl: bool = True,
                     hi_incl: bool = True) -> ScanResult:
        """All TIDs with lo </<= key </<= hi; None bounds are open."""

    @abc.abstractmethod
    def entry_count(self) -> int:
        """Number of (key, tid) entries (tests and space accounting)."""
