"""Page-structured B+-tree index.

Entries are (key, tid) pairs kept sorted in leaf pages; leaves are
chained left-to-right. Every node carries a stable page number so that
SIREAD locks can target ('index page', oid, page_no) -- the paper's
index-range locking at page granularity (section 5.2.1). Splits never
move a page number; the new right sibling gets a fresh one and the
split is reported so predicate locks can be copied to it.

Keys must be mutually comparable (ints, strings, or homogeneous
tuples). Duplicate keys are supported; (key, tid) pairs are unique.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.index.base import IndexAM, InsertResult, ScanResult
from repro.storage.tuple import TID


class _Node:
    __slots__ = ("page_no",)

    def __init__(self, page_no: int) -> None:
        self.page_no = page_no


class _Leaf(_Node):
    __slots__ = ("entries", "next_leaf")

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        self.entries: List[Tuple[Any, TID]] = []
        self.next_leaf: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("separators", "children")

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        #: child[i] holds keys < separators[i] <= child[i+1] keys.
        self.separators: List[Any] = []
        self.children: List[_Node] = []


def _bisect_left(entries: List[Tuple[Any, TID]], key: Any) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(entries: List[Tuple[Any, TID]], key: Any) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < entries[mid][0]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class BTreeIndex(IndexAM):
    """B+-tree access method; the only built-in AM with predicate-lock
    support, as in PostgreSQL 9.1 (paper section 7.4)."""

    supports_predicate_locks = True
    supports_key_locking = True

    def __init__(self, oid: int, name: str, column: str,
                 unique: bool = False, page_size: int = 32) -> None:
        super().__init__(oid, name, column, unique)
        self.page_size = max(4, page_size)
        self._next_page = 0
        self._root: _Node = self._new_leaf()
        self._count = 0

    # -- node construction ------------------------------------------------
    def _new_page_no(self) -> int:
        self._next_page += 1
        return self._next_page - 1

    def _new_leaf(self) -> _Leaf:
        return _Leaf(self._new_page_no())

    # -- descent ------------------------------------------------------------
    def _descend(self, key: Any) -> Tuple[_Leaf, List[_Internal]]:
        """Find the leftmost leaf that can hold ``key``.

        Descends left on separator equality: duplicate keys may straddle
        a split boundary, so readers must start at the leftmost
        candidate leaf and walk right along the leaf chain.
        """
        path: List[_Internal] = []
        node = self._root
        while isinstance(node, _Internal):
            path.append(node)
            idx = 0
            while idx < len(node.separators) and node.separators[idx] < key:
                idx += 1
            node = node.children[idx]
        assert isinstance(node, _Leaf)
        return node, path

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node  # type: ignore[return-value]

    # -- mutation --------------------------------------------------------------
    def insert_entry(self, key: Any, tid: TID) -> InsertResult:
        result = InsertResult(key=key)
        leaf, path = self._descend(key)
        entry = (key, tid)
        pos = _bisect_left(leaf.entries, key)
        (result.key_existed, result.successor_key,
         result.has_successor) = self._gap_info(leaf, pos, key)
        # Skip exact duplicates of (key, tid).
        scan = pos
        while scan < len(leaf.entries) and leaf.entries[scan][0] == key:
            if leaf.entries[scan][1] == tid:
                result.leaf_pages.append(leaf.page_no)
                return result
            scan += 1
        leaf.entries.insert(pos, entry)
        self._count += 1
        result.leaf_pages.append(leaf.page_no)
        if len(leaf.entries) > self.page_size:
            self._split_leaf(leaf, path, result)
        return result

    @staticmethod
    def _gap_info(leaf: _Leaf, pos: int, key: Any):
        """(key already present?, smallest existing key > key or None,
        such a key exists?) -- the next-key information guarding the
        gap an insert of ``key`` lands in."""
        existed = False
        node: Optional[_Leaf] = leaf
        idx = pos
        while node is not None:
            while idx < len(node.entries):
                entry_key = node.entries[idx][0]
                if entry_key == key:
                    existed = True
                    idx += 1
                    continue
                return existed, entry_key, True
            node = node.next_leaf
            idx = 0
        return existed, None, False

    def _split_leaf(self, leaf: _Leaf, path: List[_Internal],
                    result: InsertResult) -> None:
        mid = len(leaf.entries) // 2
        right = self._new_leaf()
        right.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        result.splits.append((leaf.page_no, right.page_no))
        self._insert_into_parent(leaf, right.entries[0][0], right, path)

    def _insert_into_parent(self, left: _Node, sep: Any, right: _Node,
                            path: List[_Internal]) -> None:
        if not path:
            new_root = _Internal(self._new_page_no())
            new_root.separators = [sep]
            new_root.children = [left, right]
            self._root = new_root
            return
        parent = path[-1]
        idx = parent.children.index(left)
        parent.separators.insert(idx, sep)
        parent.children.insert(idx + 1, right)
        if len(parent.children) > self.page_size:
            self._split_internal(parent, path[:-1])

    def _split_internal(self, node: _Internal, path: List[_Internal]) -> None:
        mid = len(node.children) // 2
        right = _Internal(self._new_page_no())
        push_up = node.separators[mid - 1]
        right.separators = node.separators[mid:]
        right.children = node.children[mid:]
        node.separators = node.separators[:mid - 1]
        node.children = node.children[:mid]
        self._insert_into_parent(node, push_up, right, path)

    def remove_entry(self, key: Any, tid: TID) -> None:
        leaf, _ = self._descend(key)
        # The entry may have drifted right across equal-key leaves.
        while leaf is not None:
            pos = _bisect_left(leaf.entries, key)
            while pos < len(leaf.entries) and leaf.entries[pos][0] == key:
                if leaf.entries[pos][1] == tid:
                    leaf.entries.pop(pos)
                    self._count -= 1
                    return
                pos += 1
            if leaf.entries and key < leaf.entries[-1][0]:
                return
            leaf = leaf.next_leaf

    # -- queries -------------------------------------------------------------
    def search(self, key: Any) -> ScanResult:
        return self.range_search(key, key)

    def range_search(self, lo: Any, hi: Any, lo_incl: bool = True,
                     hi_incl: bool = True) -> ScanResult:
        result = ScanResult()
        if lo is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
        else:
            leaf, _ = self._descend(lo)
        while leaf is not None:
            result.visited_pages.append(leaf.page_no)
            for key, tid in leaf.entries:
                if lo is not None:
                    if key < lo or (not lo_incl and key == lo):
                        continue
                if hi is not None:
                    if hi < key or (not hi_incl and key == hi):
                        # First key beyond the range: the next-key
                        # guard of the rightmost scanned gap.
                        result.next_key = key
                        result.has_next = True
                        self._set_guard_needed(result, hi, hi_incl)
                        return result
                result.tids.append(tid)
                if not result.matched_keys or result.matched_keys[-1] != key:
                    result.matched_keys.append(key)
            leaf = leaf.next_leaf
        # Range extends to +infinity (has_next False).
        self._set_guard_needed(result, hi, hi_incl)
        return result

    @staticmethod
    def _set_guard_needed(result: ScanResult, hi: Any,
                          hi_incl: bool) -> None:
        """No guard beyond the range is needed when its inclusive upper
        bound was itself matched: new entries inside the range must
        carry an existing matched key (duplicates) or have a matched
        successor, both already locked."""
        if (hi is not None and hi_incl and result.matched_keys
                and result.matched_keys[-1] == hi):
            result.guard_needed = False

    def entry_count(self) -> int:
        return self._count

    # -- invariants (property tests) ------------------------------------------
    def check_invariants(self) -> None:
        """Structural invariants: sorted leaves, correct chaining,
        separator bounds, consistent count."""
        leaves: List[_Leaf] = []

        def collect(node: _Node, lo: Any, hi: Any) -> None:
            if isinstance(node, _Leaf):
                keys = [k for k, _ in node.entries]
                assert keys == sorted(keys), "leaf keys unsorted"
                for k in keys:
                    # Bounds are inclusive on both sides: duplicate keys
                    # equal to a separator may live on either side of it.
                    if lo is not None:
                        assert not k < lo, "key below subtree bound"
                    if hi is not None:
                        assert not hi < k, "key above subtree bound"
                leaves.append(node)
                return
            assert isinstance(node, _Internal)
            assert len(node.children) == len(node.separators) + 1
            bounds = [lo] + list(node.separators) + [hi]
            for i, child in enumerate(node.children):
                collect(child, bounds[i], bounds[i + 1])

        collect(self._root, None, None)
        chain: List[_Leaf] = []
        node = self._leftmost_leaf()
        while node is not None:
            chain.append(node)
            node = node.next_leaf
        assert chain == leaves, "leaf chain disagrees with tree order"
        assert sum(len(l.entries) for l in leaves) == self._count
