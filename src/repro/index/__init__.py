"""Index access methods.

Two built-in AMs, mirroring the paper's section 7.4:

* B+-tree (repro.index.btree): page-structured so that predicate reads
  can take SIREAD locks on the leaf pages they visit -- including the
  page where a key *would* be, which is how phantoms are detected
  (index-range locking at page granularity, section 5.2.1). Page splits
  report the (old, new) page pair so the SSI lock manager can copy
  predicate locks to the new page.
* Hash (repro.index.hashidx): declares
  ``supports_predicate_locks = False``; scans through it fall back to a
  relation-level SIREAD lock on the index, exactly the coarse fallback
  the paper describes for AMs without predicate-lock support.
"""

from repro.index.base import IndexAM, InsertResult, ScanResult
from repro.index.btree import BTreeIndex
from repro.index.gist import GiSTIndex
from repro.index.hashidx import HashIndex

__all__ = ["IndexAM", "InsertResult", "ScanResult", "BTreeIndex",
           "GiSTIndex", "HashIndex"]
