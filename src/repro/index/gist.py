"""GiST-style index over intervals, with internal-node predicate
locking (paper section 7.4).

The paper planned GiST support for a later release, noting the one
structural difference from B+-trees: "GiST indexes must lock internal
nodes in the tree, while B+-tree indexes only lock leaf pages". The
reason: GiST key space has no linear order, so an insert can descend
anywhere — the only stable footprint a scan can lock is the set of
nodes it visited, including internal ones, and an insert conflicts
with any scan whose visited nodes it modifies (bounding-key expansion
or entry placement).

This implementation indexes 1-D intervals (column values are
``(lo, hi)`` tuples) and answers *overlaps* queries — the classic GiST
example, sufficient to exercise every locking path. Node ids play the
role of page numbers, so the existing page-granularity SIREAD
machinery (including split handling) applies unchanged.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.index.base import IndexAM, InsertResult, ScanResult
from repro.storage.tuple import TID

Interval = Tuple[Any, Any]


def _as_interval(key: Any) -> Interval:
    """Accept (lo, hi) tuples or scalars (degenerate intervals)."""
    if isinstance(key, (tuple, list)) and len(key) == 2:
        lo, hi = key
        return (lo, hi) if lo <= hi else (hi, lo)
    return (key, key)


def _overlaps(a: Interval, b: Interval) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def _union(a: Optional[Interval], b: Interval) -> Interval:
    if a is None:
        return b
    return (min(a[0], b[0]), max(a[1], b[1]))


def _enlargement(bounds: Optional[Interval], key: Interval) -> float:
    if bounds is None:
        return 0.0
    merged = _union(bounds, key)
    return float((merged[1] - merged[0]) - (bounds[1] - bounds[0]))


class _Node:
    __slots__ = ("node_id", "leaf", "entries", "bounds")

    def __init__(self, node_id: int, leaf: bool) -> None:
        self.node_id = node_id
        self.leaf = leaf
        #: leaf: [(interval, tid)]; internal: [(interval, child node)].
        self.entries: List[Tuple[Interval, Any]] = []
        self.bounds: Optional[Interval] = None

    def recompute_bounds(self) -> None:
        self.bounds = None
        for interval, _payload in self.entries:
            self.bounds = _union(self.bounds, interval)


class GiSTIndex(IndexAM):
    """Interval GiST; predicate locks target every visited node."""

    supports_predicate_locks = True
    ordered = False
    #: GiST has no linear key order: next-key locking cannot apply, so
    #: the engine always uses node (page) locking for this AM.
    supports_key_locking = False
    #: Planner hint: this AM answers overlap queries.
    spatial = True

    def __init__(self, oid: int, name: str, column: str,
                 unique: bool = False, node_size: int = 8) -> None:
        super().__init__(oid, name, column, unique)
        self.node_size = max(4, node_size)
        self._next_node = 0
        self._root = self._new_node(leaf=True)
        self._count = 0

    def _new_node(self, leaf: bool) -> _Node:
        node = _Node(self._next_node, leaf)
        self._next_node += 1
        return node

    # -- insertion -------------------------------------------------------
    def insert_entry(self, key: Any, tid: TID) -> InsertResult:
        interval = _as_interval(key)
        result = InsertResult(key=key)
        path = self._choose_path(interval)
        leaf = path[-1]
        if any(entry == (interval, tid) for entry in leaf.entries):
            result.leaf_pages.append(leaf.node_id)
            return result
        leaf.entries.append((interval, tid))
        self._count += 1
        # Every node whose bounding key this insert touches is part of
        # the write footprint (the internal-node locking rule).
        for node in path:
            node.bounds = _union(node.bounds, interval)
            result.leaf_pages.append(node.node_id)
        # Refresh parent entry keys to match the grown child bounds.
        for parent, child in zip(path, path[1:]):
            parent.entries = [(child.bounds, c) if c is child else (iv, c)
                              for iv, c in parent.entries]
        node = leaf
        for parent in reversed(path[:-1]):
            if len(node.entries) > self.node_size:
                sibling = self._split(node, parent)
                result.splits.append((node.node_id, sibling.node_id))
            node = parent
        if len(self._root.entries) > self.node_size:
            old_root = self._root
            new_root = self._new_node(leaf=False)
            new_root.entries = [(old_root.bounds, old_root)]
            new_root.recompute_bounds()
            self._root = new_root
            sibling = self._split(old_root, new_root)
            result.splits.append((old_root.node_id, sibling.node_id))
        return result

    def _choose_path(self, interval: Interval) -> List[_Node]:
        """Root-to-leaf path of least bounding-key enlargement."""
        path = [self._root]
        node = self._root
        while not node.leaf:
            best = min(node.entries,
                       key=lambda e: (_enlargement(e[0], interval),
                                      e[0][1] - e[0][0]))
            node = best[1]
            path.append(node)
        return path

    def _split(self, node: _Node, parent: _Node) -> _Node:
        """Linear split: order by interval start, halve."""
        node.entries.sort(key=lambda e: (e[0][0], e[0][1]))
        half = len(node.entries) // 2
        sibling = self._new_node(node.leaf)
        sibling.entries = node.entries[half:]
        node.entries = node.entries[:half]
        node.recompute_bounds()
        sibling.recompute_bounds()
        parent.entries = [(interval, child) if child is not node
                          else (node.bounds, node)
                          for interval, child in parent.entries]
        parent.entries.append((sibling.bounds, sibling))
        parent.recompute_bounds()
        return sibling

    # -- search ---------------------------------------------------------------
    def search(self, key: Any) -> ScanResult:
        return self._scan(_as_interval(key))

    def range_search(self, lo: Any, hi: Any, lo_incl: bool = True,
                     hi_incl: bool = True) -> ScanResult:
        return self._scan((lo, hi))

    def _scan(self, query: Interval) -> ScanResult:
        """Overlap query; records every node visited (internal and
        leaf) as the predicate-lock footprint."""
        result = ScanResult()
        stack = [self._root]
        while stack:
            node = stack.pop()
            result.visited_pages.append(node.node_id)
            for interval, payload in node.entries:
                if not _overlaps(interval, query):
                    continue
                if node.leaf:
                    result.tids.append(payload)
                else:
                    stack.append(payload)
        return result

    # -- maintenance --------------------------------------------------------------
    def remove_entry(self, key: Any, tid: TID) -> None:
        interval = _as_interval(key)

        def recurse(node: _Node) -> bool:
            removed = False
            if node.leaf:
                before = len(node.entries)
                node.entries = [e for e in node.entries
                                if e != (interval, tid)]
                removed = len(node.entries) != before
            else:
                for entry_interval, child in node.entries:
                    if _overlaps(entry_interval, interval):
                        removed |= recurse(child)
                node.entries = [(child.bounds, child)
                                for _i, child in node.entries
                                if child.entries or child is self._root]
            if removed:
                node.recompute_bounds()
            return removed

        if recurse(self._root):
            self._count -= 1

    def entry_count(self) -> int:
        return self._count

    # -- invariants (property tests) ----------------------------------------------
    def check_invariants(self) -> None:
        count = [0]

        def recurse(node: _Node) -> None:
            computed = None
            for interval, payload in node.entries:
                computed = _union(computed, interval)
                if node.leaf:
                    count[0] += 1
                else:
                    recurse(payload)
                    assert payload.bounds == interval, \
                        "stale bounding key in parent entry"
            assert node.bounds == computed, "stale node bounds"

        recurse(self._root)
        assert count[0] == self._count
