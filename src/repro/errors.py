"""Exception hierarchy for the SSI reproduction engine.

The error classes mirror the SQLSTATE classes PostgreSQL uses for the
corresponding conditions, so tests and applications can react to the
same distinctions the paper discusses (serialization failures that merit
a retry, deadlocks, read-only violations, capacity errors).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all engine errors."""

    sqlstate = "XX000"


class UserError(ReproError):
    """Errors caused by incorrect API usage (not by concurrency)."""

    sqlstate = "22000"


class UndefinedTableError(UserError):
    sqlstate = "42P01"


class DuplicateTableError(UserError):
    sqlstate = "42P07"


class UndefinedIndexError(UserError):
    sqlstate = "42704"


class DuplicateIndexError(UserError):
    sqlstate = "42P07"


class UndefinedColumnError(UserError):
    sqlstate = "42703"


class UniqueViolationError(UserError):
    sqlstate = "23505"


class InvalidTransactionStateError(UserError):
    sqlstate = "25000"


class ReadOnlyTransactionError(UserError):
    """Write attempted in a transaction declared READ ONLY."""

    sqlstate = "25006"


class FeatureNotSupportedError(UserError):
    """For example: SERIALIZABLE transactions on a streaming replica
    without a safe snapshot (paper section 7.2)."""

    sqlstate = "0A000"


class RetryableError(ReproError):
    """Errors for which the paper assumes a middleware retry layer
    (section 3.3: "users must already be prepared to handle transactions
    aborted by serialization failures")."""


class SerializationFailure(RetryableError):
    """Could not serialize access (SQLSTATE 40001).

    Raised when SSI detects a dangerous structure (section 3.3), when a
    snapshot-isolation transaction loses a first-updater-wins conflict
    ("could not serialize access due to concurrent update"), or when a
    transaction was marked DOOMED by another session's commit (the safe
    retry rules of section 5.4).
    """

    sqlstate = "40001"

    def __init__(self, message: str, *, pivot_xid: Optional[int] = None,
                 reason: str = "dangerous structure") -> None:
        super().__init__(message)
        self.pivot_xid = pivot_xid
        self.reason = reason


class DeadlockDetected(RetryableError):
    """Deadlock among blocking lock waits (SQLSTATE 40P01).

    Only blocking modes (snapshot-isolation write locks and the S2PL
    baseline) can deadlock; SIREAD locks never block (section 5.2.1).
    """

    sqlstate = "40P01"


class CapacityExceededError(ReproError):
    """Out of (simulated) shared memory (SQLSTATE 53200).

    Section 6 requires the implementation to degrade gracefully via
    granularity promotion and summarization before ever raising this;
    hitting it indicates the configured lock table is too small even for
    maximally-promoted locks.
    """

    sqlstate = "53200"


class WouldBlock(Exception):
    """Internal control-flow signal: the current statement must wait.

    Not an error. Carries the executor generator so the statement can be
    resumed exactly where it suspended once the wait condition clears.
    The deterministic scheduler (repro.sim) handles this transparently;
    direct callers (unit tests) may catch it and call ``resume()`` on
    the session after resolving the conflict.
    """

    def __init__(self, condition: "object", session: "object" = None) -> None:
        super().__init__(f"would block on {condition!r}")
        self.condition = condition
        self.session = session
