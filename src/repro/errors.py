"""Exception hierarchy for the SSI reproduction engine.

The error classes mirror the SQLSTATE classes PostgreSQL uses for the
corresponding conditions, so tests and applications can react to the
same distinctions the paper discusses (serialization failures that merit
a retry, deadlocks, read-only violations, capacity errors).
"""

from __future__ import annotations

import enum
from typing import Optional


class AbortCause(enum.Enum):
    """Why a serialization failure fired (the abort-cause taxonomy the
    observability layer counts under ``ssi.aborts{cause=...}``).

    The taxonomy mirrors where PostgreSQL's SSI can cancel a
    transaction (paper sections 3.3.1, 4.1, 5.4 and 7.1):

    * ``PIVOT`` -- the acting transaction is itself the pivot T2 of a
      confirmed dangerous structure and is aborted on the spot;
    * ``UNABORTABLE`` -- a structure was confirmed but every other
      participant has already committed or prepared, so the acting
      transaction dies instead (safe-retry fallback / section 7.1);
    * ``DOOMED_AT_OP`` -- another session's conflict resolution marked
      this transaction DOOMED and it noticed at its next operation;
    * ``DOOMED_AT_COMMIT`` -- as above, noticed at COMMIT/PREPARE;
    * ``UPDATE_CONFLICT`` -- snapshot isolation's first-updater-wins
      write/write conflict (not an SSI dangerous structure).
    """

    PIVOT = "pivot"
    UNABORTABLE = "unabortable"
    DOOMED_AT_OP = "doomed_at_op"
    DOOMED_AT_COMMIT = "doomed_at_commit"
    UPDATE_CONFLICT = "update_conflict"


class ReproError(Exception):
    """Base class for all engine errors.

    ``sqlstate`` mirrors PostgreSQL's five-character code for the
    condition; ``retryable`` is True for the classes a client-side
    retry loop should transparently re-attempt (serialization
    failures, deadlocks, admission rejections, lock/statement
    timeouts). The wire protocol (repro.server.protocol) surfaces both
    as structured fields on every error response.
    """

    sqlstate = "XX000"
    retryable = False


class UserError(ReproError):
    """Errors caused by incorrect API usage (not by concurrency)."""

    sqlstate = "22000"


class UndefinedTableError(UserError):
    sqlstate = "42P01"


class DuplicateTableError(UserError):
    sqlstate = "42P07"


class UndefinedIndexError(UserError):
    sqlstate = "42704"


class DuplicateIndexError(UserError):
    sqlstate = "42P07"


class UndefinedColumnError(UserError):
    sqlstate = "42703"


class UniqueViolationError(UserError):
    sqlstate = "23505"


class InvalidTransactionStateError(UserError):
    sqlstate = "25000"


class ReadOnlyTransactionError(UserError):
    """Write attempted in a transaction declared READ ONLY."""

    sqlstate = "25006"


class FeatureNotSupportedError(UserError):
    """For example: SERIALIZABLE transactions on a streaming replica
    without a safe snapshot (paper section 7.2)."""

    sqlstate = "0A000"


class ProtocolError(UserError):
    """Malformed wire-protocol frame (SQLSTATE 08P01,
    protocol_violation): not valid JSON, missing required fields, or an
    operation sent in a connection state that does not accept it."""

    sqlstate = "08P01"


class AuthenticationError(UserError):
    """The connection's hello carried a missing or wrong credential
    (SQLSTATE 28P01, invalid_password)."""

    sqlstate = "28P01"


class RetryableError(ReproError):
    """Errors for which the paper assumes a middleware retry layer
    (section 3.3: "users must already be prepared to handle transactions
    aborted by serialization failures")."""

    retryable = True


class SerializationFailure(RetryableError):
    """Could not serialize access (SQLSTATE 40001).

    Raised when SSI detects a dangerous structure (section 3.3), when a
    snapshot-isolation transaction loses a first-updater-wins conflict
    ("could not serialize access due to concurrent update"), or when a
    transaction was marked DOOMED by another session's commit (the safe
    retry rules of section 5.4).
    """

    sqlstate = "40001"

    def __init__(self, message: str, *, pivot_xid: Optional[int] = None,
                 reason: str = "dangerous structure",
                 cause: Optional[AbortCause] = None,
                 t1_xid: Optional[int] = None,
                 t3_xid: Optional[int] = None,
                 t3_commit_seq: Optional[float] = None,
                 rule: Optional[str] = None) -> None:
        super().__init__(message)
        self.pivot_xid = pivot_xid
        self.reason = reason
        #: Structured abort cause (:class:`AbortCause`) so tests and the
        #: post-mortem explainer can assert on cause rather than
        #: regex-matching the message text.
        self.cause = cause
        #: The dangerous structure T1 -rw-> T2(pivot) -rw-> T3 behind
        #: this failure, when known. ``t1_xid`` is None when T1 was a
        #: summarized committed transaction (section 6.2); ``t3_xid``
        #: is None when only T3's commit sequence number survived.
        self.t1_xid = t1_xid
        self.t3_xid = t3_xid
        self.t3_commit_seq = t3_commit_seq
        #: Which commit-ordering rule confirmed the structure:
        #: "commit_order" (section 3.3.1: T3 committed first),
        #: "ro_snapshot" (Theorem 3: read-only T1, T3 committed before
        #: T1's snapshot), "basic" (optimizations disabled), or
        #: "flags" (two-bit ablation mode).
        self.rule = rule


class DeadlockDetected(RetryableError):
    """Deadlock among blocking lock waits (SQLSTATE 40P01).

    Only blocking modes (snapshot-isolation write locks and the S2PL
    baseline) can deadlock; SIREAD locks never block (section 5.2.1).
    """

    sqlstate = "40P01"


class TooManyConnections(RetryableError):
    """Admission control rejected the connection or request (SQLSTATE
    53300, too_many_connections).

    Raised by the server front end when the connection count is at
    ``ServerConfig.max_connections`` or a connection's bounded request
    queue is full (backpressure). Retryable: the client library backs
    off exponentially and reconnects/resends, which is how the "heavy
    traffic" story degrades gracefully instead of collapsing.
    """

    sqlstate = "53300"


class LockNotAvailable(RetryableError):
    """A statement waited on a heavyweight lock past the configured
    statement timeout (SQLSTATE 55P03, lock_not_available).

    The server's wait hook cancels the queued lock request (so the
    grant queue stays clean) and fails the statement; the transaction
    enters the FAILED state exactly as for any other statement error.
    """

    sqlstate = "55P03"


class StatementTimeout(RetryableError):
    """A statement exceeded the configured statement timeout while
    parked on a non-lock wait, e.g. a DEFERRABLE safe-snapshot wait
    (SQLSTATE 57014, query_canceled)."""

    sqlstate = "57014"


class AdminShutdown(ReproError):
    """The server is shutting down; parked statements are cancelled
    (SQLSTATE 57P01, admin_shutdown)."""

    sqlstate = "57P01"


class CapacityExceededError(ReproError):
    """Out of (simulated) shared memory (SQLSTATE 53200).

    Section 6 requires the implementation to degrade gracefully via
    granularity promotion and summarization before ever raising this;
    hitting it indicates the configured lock table is too small even for
    maximally-promoted locks.
    """

    sqlstate = "53200"


class DataCorruptionError(ReproError):
    """On-disk data failed validation (SQLSTATE XX001, data_corrupted).

    Raised when a page frame's checksum, magic, or header does not
    match its contents -- a torn write, bit rot, or truncation. The
    durability layer raises this *instead of* deserializing the frame,
    so corruption can never silently surface as wrong rows. Carries
    structured context naming the damaged frame so operators (and the
    fault-injection tests) can pinpoint it.
    """

    sqlstate = "XX001"

    def __init__(self, msg: str, *, path: str = "", kind: str = "",
                 page_no: "int | None" = None,
                 reason: str = "") -> None:
        super().__init__(msg)
        #: File holding the damaged frame.
        self.path = path
        #: Frame kind: "heap", "clog", "serxid", "wal", "checkpoint".
        self.kind = kind
        #: Page number within the file (None for non-paged files).
        self.page_no = page_no
        #: Machine-readable failure: "checksum", "magic", "short",
        #: "version", "overflow".
        self.reason = reason

    def details(self) -> dict:
        return {"path": self.path, "kind": self.kind,
                "page_no": self.page_no, "reason": self.reason}


class WouldBlock(Exception):
    """Internal control-flow signal: the current statement must wait.

    Not an error. Carries the executor generator so the statement can be
    resumed exactly where it suspended once the wait condition clears.
    The deterministic scheduler (repro.sim) handles this transparently;
    direct callers (unit tests) may catch it and call ``resume()`` on
    the session after resolving the conflict.
    """

    def __init__(self, condition: "object", session: "object" = None) -> None:
        super().__init__(f"would block on {condition!r}")
        self.condition = condition
        self.session = session
