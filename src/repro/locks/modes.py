"""Lock modes and the conflict matrix.

One enum covers both families used in the engine:

* PostgreSQL's table lock modes (ACCESS_SHARE .. ACCESS_EXCLUSIVE),
  acquired on ('rel', oid) tags by DML and DDL;
* classic multigranularity data lock modes (IS, IX, S, SIX, X),
  acquired on data tags by the S2PL baseline, plus SHARE/EXCLUSIVE for
  xid waits.

The two families are never requested on the same lock tag, so a single
conflict table is safe and keeps the manager simple.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet


class LockMode(enum.Enum):
    # --- PostgreSQL table lock modes (weakest to strongest) ---
    ACCESS_SHARE = "AccessShare"
    ROW_SHARE = "RowShare"
    ROW_EXCLUSIVE = "RowExclusive"
    SHARE_UPDATE_EXCLUSIVE = "ShareUpdateExclusive"
    SHARE = "Share"
    SHARE_ROW_EXCLUSIVE = "ShareRowExclusive"
    EXCLUSIVE = "Exclusive"
    ACCESS_EXCLUSIVE = "AccessExclusive"
    # --- multigranularity data lock modes (S2PL baseline) ---
    INTENTION_SHARE = "IS"
    INTENTION_EXCLUSIVE = "IX"
    SHARE_INTENT_EXCLUSIVE = "SIX"


_M = LockMode

#: For each mode, the set of modes it conflicts with.
CONFLICTS: Dict[LockMode, FrozenSet[LockMode]] = {
    # PostgreSQL's table-lock conflict table.
    _M.ACCESS_SHARE: frozenset({_M.ACCESS_EXCLUSIVE}),
    _M.ROW_SHARE: frozenset({_M.EXCLUSIVE, _M.ACCESS_EXCLUSIVE}),
    _M.ROW_EXCLUSIVE: frozenset({
        _M.SHARE, _M.SHARE_ROW_EXCLUSIVE, _M.EXCLUSIVE, _M.ACCESS_EXCLUSIVE}),
    _M.SHARE_UPDATE_EXCLUSIVE: frozenset({
        _M.SHARE_UPDATE_EXCLUSIVE, _M.SHARE, _M.SHARE_ROW_EXCLUSIVE,
        _M.EXCLUSIVE, _M.ACCESS_EXCLUSIVE}),
    _M.SHARE: frozenset({
        _M.ROW_EXCLUSIVE, _M.SHARE_UPDATE_EXCLUSIVE, _M.SHARE_ROW_EXCLUSIVE,
        _M.EXCLUSIVE, _M.ACCESS_EXCLUSIVE,
        # data-mode interactions (classic S/X/intent matrix)
        _M.INTENTION_EXCLUSIVE, _M.SHARE_INTENT_EXCLUSIVE}),
    _M.SHARE_ROW_EXCLUSIVE: frozenset({
        _M.ROW_EXCLUSIVE, _M.SHARE_UPDATE_EXCLUSIVE, _M.SHARE,
        _M.SHARE_ROW_EXCLUSIVE, _M.EXCLUSIVE, _M.ACCESS_EXCLUSIVE}),
    _M.EXCLUSIVE: frozenset({
        _M.ROW_SHARE, _M.ROW_EXCLUSIVE, _M.SHARE_UPDATE_EXCLUSIVE, _M.SHARE,
        _M.SHARE_ROW_EXCLUSIVE, _M.EXCLUSIVE, _M.ACCESS_EXCLUSIVE,
        # data-mode interactions
        _M.INTENTION_SHARE, _M.INTENTION_EXCLUSIVE,
        _M.SHARE_INTENT_EXCLUSIVE}),
    _M.ACCESS_EXCLUSIVE: frozenset(set(_M) - {_M.INTENTION_SHARE,
                                              _M.INTENTION_EXCLUSIVE,
                                              _M.SHARE_INTENT_EXCLUSIVE}),
    # Classic multigranularity matrix.
    _M.INTENTION_SHARE: frozenset({_M.EXCLUSIVE}),
    _M.INTENTION_EXCLUSIVE: frozenset({
        _M.SHARE, _M.SHARE_INTENT_EXCLUSIVE, _M.EXCLUSIVE}),
    _M.SHARE_INTENT_EXCLUSIVE: frozenset({
        _M.INTENTION_EXCLUSIVE, _M.SHARE, _M.SHARE_INTENT_EXCLUSIVE,
        _M.EXCLUSIVE}),
}


def modes_conflict(a: LockMode, b: LockMode) -> bool:
    return b in CONFLICTS[a]
