"""Heavyweight lock manager.

Multi-mode locks over arbitrary hashable tags, with FIFO wait queues
and wait-for-graph deadlock detection. Three tag families are used:

* ``('rel', oid)`` -- table locks (DML takes non-conflicting modes,
  DDL takes ACCESS_EXCLUSIVE; also LOCK TABLE);
* ``('xid', xid)`` -- every transaction holds EXCLUSIVE on its own xid;
  waiting for a transaction (tuple write conflicts, unique-insert
  conflicts) acquires SHARE on it, exactly PostgreSQL's mechanism, so
  write-write deadlocks are caught by the same detector;
* ``('s2pl-*', ...)`` -- the S2PL baseline's data and predicate locks.

The manager never sleeps itself: ``acquire`` either grants immediately
or returns a queued :class:`LockRequest`, which executor generators
yield to the scheduler until ``request.granted`` becomes true.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.errors import DeadlockDetected
from repro.locks.modes import LockMode, modes_conflict

LockTag = Tuple[Hashable, ...]


@dataclass
class LockRequest:
    """A pending (queued) lock acquisition; doubles as the wait
    condition a blocked executor yields to the scheduler."""

    owner: int  # top-level xid
    tag: LockTag
    mode: LockMode
    granted: bool = False
    cancelled: bool = False
    #: Monotonic enqueue time, set only when lock-wait timing is on.
    enqueued_ns: Optional[int] = None

    @property
    def ready(self) -> bool:
        return self.granted or self.cancelled

    def describe(self) -> str:
        return f"{self.mode.value} on {self.tag} for xid {self.owner}"


@dataclass
class _LockEntry:
    """State for one lock tag."""

    #: (owner, mode) -> hold count (reentrant acquisition).
    granted: Dict[Tuple[int, LockMode], int] = field(default_factory=dict)
    queue: List[LockRequest] = field(default_factory=list)

    def holders_conflicting(self, owner: int, mode: LockMode) -> Set[int]:
        out = set()
        for (holder, held_mode), count in self.granted.items():
            if count > 0 and holder != owner and modes_conflict(mode, held_mode):
                out.add(holder)
        return out

    def queued_conflicting(self, owner: int, mode: LockMode,
                           before: Optional[LockRequest] = None) -> Set[int]:
        out = set()
        for req in self.queue:
            if req is before:
                break
            if req.owner != owner and modes_conflict(mode, req.mode):
                out.add(req.owner)
        return out


class LockManager:
    """The shared lock table."""

    def __init__(self, obs=None) -> None:
        self._table: Dict[LockTag, _LockEntry] = {}  # repro: guarded-by(ENGINE)
        #: locks held per owner, for fast release_all.
        self._held: Dict[int, Dict[LockTag, Set[LockMode]]] = {}  # repro: guarded-by(ENGINE)
        #: Work-unit counter consumed by the simulator's cost model.
        self.work_units = 0  # repro: guarded-by(ENGINE)
        #: Deadlocks detected (benchmark statistic, cf. RUBiS/Figure 6).
        self.deadlocks_detected = 0  # repro: guarded-by(ENGINE)
        #: Observability handle (repro.obs); None disables all tracing
        #: and wait timing at the cost of one ``is not None`` test.
        self._obs = obs if (obs is not None and obs.enabled) else None
        self._wait_hist = (obs.metrics.histogram("locks.wait_ns")
                           if self._obs is not None
                           and obs.config.lock_wait_timing else None)

    # -- acquisition ---------------------------------------------------------
    def acquire(self, owner: int, tag: LockTag,
                mode: LockMode) -> Optional[LockRequest]:
        """Try to take ``mode`` on ``tag`` for ``owner``.

        Returns None when granted immediately (including reentrant
        grants); otherwise enqueues and returns the pending request.
        Raises DeadlockDetected (and does not enqueue) if waiting would
        close a cycle; per PostgreSQL convention, the transaction that
        detects the deadlock is the victim.
        """
        self.work_units += 1
        entry = self._table.setdefault(tag, _LockEntry())
        key = (owner, mode)
        if entry.granted.get(key, 0) > 0:
            entry.granted[key] += 1
            return None
        if not entry.holders_conflicting(owner, mode):
            # Jump the wait queue if we already hold some lock on this
            # object (PostgreSQL's rule): queueing an upgrade behind
            # waiters that conflict with our existing hold would
            # deadlock instantly.
            already_holds = any(h == owner and count > 0
                                for (h, _m), count in entry.granted.items())
            if already_holds or not entry.queued_conflicting(owner, mode):
                self._grant(entry, owner, tag, mode)
                return None

        request = LockRequest(owner, tag, mode)
        entry.queue.append(request)
        blockers = self._blockers_of(request, entry)
        if self._creates_deadlock(owner, blockers):
            entry.queue.remove(request)
            request.cancelled = True
            self.deadlocks_detected += 1
            if self._obs is not None:
                self._obs.emit("lock.deadlock", owner, tag=tag,
                               mode=mode.value)
            raise DeadlockDetected(
                f"deadlock detected while waiting for {request.describe()}")
        if self._obs is not None:
            if self._wait_hist is not None:
                request.enqueued_ns = time.monotonic_ns()
            self._obs.emit("lock.wait", owner, tag=tag, mode=mode.value,
                           blockers=sorted(blockers))
        return request

    def holds(self, owner: int, tag: LockTag, mode: LockMode) -> bool:
        entry = self._table.get(tag)
        return bool(entry and entry.granted.get((owner, mode), 0) > 0)

    def _grant(self, entry: _LockEntry, owner: int, tag: LockTag,
               mode: LockMode) -> None:
        key = (owner, mode)
        entry.granted[key] = entry.granted.get(key, 0) + 1
        self._held.setdefault(owner, {}).setdefault(tag, set()).add(mode)

    # -- release --------------------------------------------------------------
    def release(self, owner: int, tag: LockTag, mode: LockMode) -> None:
        """Release one hold of ``mode`` on ``tag``."""
        self.work_units += 1
        entry = self._table.get(tag)
        if entry is None:
            return
        key = (owner, mode)
        count = entry.granted.get(key, 0)
        if count <= 1:
            entry.granted.pop(key, None)
            held = self._held.get(owner, {})
            if tag in held:
                held[tag].discard(mode)
                if not held[tag]:
                    del held[tag]
        else:
            entry.granted[key] = count - 1
        self._wake_queue(entry)
        self._maybe_gc(tag, entry)

    def release_all(self, owner: int) -> None:
        """Drop every lock and queued request owned by ``owner``
        (transaction end)."""
        held = self._held.pop(owner, {})
        for tag in list(held):
            entry = self._table.get(tag)
            if entry is None:
                continue
            for mode in list(held[tag]):
                entry.granted.pop((owner, mode), None)
                self.work_units += 1
            self._wake_queue(entry)
            self._maybe_gc(tag, entry)
        # Cancel any queued requests (e.g. transaction aborted by a
        # deadlock or serialization failure while waiting).
        for tag, entry in list(self._table.items()):
            pending = [r for r in entry.queue if r.owner == owner]
            for req in pending:
                entry.queue.remove(req)
                req.cancelled = True
                if self._obs is not None:
                    self._obs.emit("lock.cancel", owner, tag=req.tag,
                                   mode=req.mode.value)
            if pending:
                self._wake_queue(entry)
                self._maybe_gc(tag, entry)

    def cancel_request(self, request: LockRequest) -> None:
        """Withdraw one queued request (statement-timeout cancellation:
        the waiting statement gives up without ending its transaction).

        No-op if the request was already granted or cancelled. Wakes
        the queue: removing a waiter can unblock requests behind it
        that only conflicted with the cancelled one.
        """
        if request.granted or request.cancelled:
            return
        entry = self._table.get(request.tag)
        if entry is None or request not in entry.queue:
            request.cancelled = True
            return
        entry.queue.remove(request)
        request.cancelled = True
        self.work_units += 1
        if self._obs is not None:
            self._obs.emit("lock.cancel", request.owner, tag=request.tag,
                           mode=request.mode.value)
        self._wake_queue(entry)
        self._maybe_gc(request.tag, entry)

    def _wake_queue(self, entry: _LockEntry) -> None:
        """Grant queued requests in FIFO order until one must wait."""
        while entry.queue:
            req = entry.queue[0]
            if entry.holders_conflicting(req.owner, req.mode):
                break
            entry.queue.pop(0)
            self._grant(entry, req.owner, req.tag, req.mode)
            req.granted = True
            self.work_units += 1
            if self._obs is not None:
                wait_ns = (time.monotonic_ns() - req.enqueued_ns
                           if req.enqueued_ns is not None else None)
                if wait_ns is not None and self._wait_hist is not None:
                    self._wait_hist.observe(wait_ns)
                self._obs.emit("lock.grant", req.owner, tag=req.tag,
                               mode=req.mode.value, wait_ns=wait_ns)

    def _maybe_gc(self, tag: LockTag, entry: _LockEntry) -> None:
        if not entry.granted and not entry.queue:
            self._table.pop(tag, None)

    # -- deadlock detection ---------------------------------------------------
    def _blockers_of(self, request: LockRequest,
                     entry: _LockEntry) -> Set[int]:
        blockers = entry.holders_conflicting(request.owner, request.mode)
        blockers |= entry.queued_conflicting(request.owner, request.mode,
                                             before=request)
        return blockers

    def _wait_edges(self) -> Dict[int, Set[int]]:
        """Current wait-for graph: waiter xid -> blocker xids."""
        edges: Dict[int, Set[int]] = {}
        for entry in self._table.values():
            for req in entry.queue:
                edges.setdefault(req.owner, set()).update(
                    self._blockers_of(req, entry))
        return edges

    def _creates_deadlock(self, start: int, first_hops: Set[int]) -> bool:
        """Would ``start`` waiting on ``first_hops`` close a cycle?"""
        edges = self._wait_edges()
        stack = list(first_hops)
        seen: Set[int] = set()
        while stack:
            self.work_units += 1
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return False

    # -- introspection ----------------------------------------------------------
    def iter_locks(self) -> Iterator[Dict[str, object]]:
        """Public iteration over the lock table: one dict per granted
        hold and per queued waiter (the pg_locks row shape). Replaces
        reaching into the private ``_table``."""
        for tag, entry in self._table.items():
            for (owner, mode), count in entry.granted.items():
                if count > 0:
                    yield {"tag": tag, "mode": mode, "owner_xid": owner,
                           "granted": True, "hold_count": count}
            for request in entry.queue:
                yield {"tag": tag, "mode": request.mode,
                       "owner_xid": request.owner, "granted": False,
                       "hold_count": 0}

    def locks_held(self, owner: int) -> Dict[LockTag, Set[LockMode]]:
        return {tag: set(modes)
                for tag, modes in self._held.get(owner, {}).items()}

    def waiters(self) -> List[LockRequest]:
        return [req for entry in self._table.values() for req in entry.queue]
