"""Lock infrastructure.

PostgreSQL's three lock mechanisms (paper section 5.1) map here as:

* lightweight locks (latches) -- unnecessary: the engine is
  single-threaded under the deterministic scheduler, but the lock
  managers still count their work units so latch/CPU contention shows
  up in the simulated cost model;
* heavyweight locks -- :class:`repro.locks.manager.LockManager`:
  multi-mode locks with FIFO wait queues and deadlock detection, used
  for table-level locks, transaction-completion (xid) waits, and the
  S2PL baseline's read/write/intention locks;
* tuple locks -- stored in the tuple header itself (the xmax field,
  see repro.storage.tuple); conflicts escalate to an xid wait in the
  heavyweight manager, exactly as in PostgreSQL.

SIREAD locks are *not* here: they never block and live in the dedicated
SSI lock manager (repro.ssi.lockmgr), as in the paper (section 5.2.1).
"""

from repro.locks.modes import LockMode, modes_conflict
from repro.locks.manager import LockManager, LockRequest

__all__ = ["LockMode", "modes_conflict", "LockManager", "LockRequest"]
