"""S2PL lock acquisition helpers and read semantics.

All acquisition helpers are generators: they yield the pending
LockRequest while blocked and return once granted (strict 2PL: locks
are released only at transaction end, by LockManager.release_all).
"""

from __future__ import annotations

from typing import Iterator

from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.mvcc.clog import CommitLog
from repro.mvcc.visibility import TxnView
from repro.mvcc.xid import INVALID_XID
from repro.storage.tuple import TID


def data_rel_tag(rel_oid: int):
    return ("2r", rel_oid)


def data_tuple_tag(rel_oid: int, tid: TID):
    return ("2t", rel_oid, tid.page, tid.slot)


def index_page_tag(index_oid: int, page_no: int):
    return ("2ip", index_oid, page_no)


def _acquire(lockmgr: LockManager, owner: int, tag, mode: LockMode) -> Iterator:
    """Acquire, yielding the request while it must wait. Raises
    DeadlockDetected if waiting would close a cycle."""
    request = lockmgr.acquire(owner, tag, mode)  # repro: noqa(LOCK002) -- strict 2PL: held to commit, released by release_all
    while request is not None and not request.granted:
        if request.cancelled:
            raise RuntimeError(
                f"lock request cancelled while waiting: {request.describe()}")
        yield request


def lock_relation_read(lockmgr: LockManager, owner: int,
                       rel_oid: int) -> Iterator:
    """Sequential scan: relation-level S lock (covers phantoms)."""
    yield from _acquire(lockmgr, owner, data_rel_tag(rel_oid), LockMode.SHARE)


def lock_relation_read_intent(lockmgr: LockManager, owner: int,
                              rel_oid: int) -> Iterator:
    yield from _acquire(lockmgr, owner, data_rel_tag(rel_oid),
                        LockMode.INTENTION_SHARE)


def lock_relation_write_intent(lockmgr: LockManager, owner: int,
                               rel_oid: int) -> Iterator:
    yield from _acquire(lockmgr, owner, data_rel_tag(rel_oid),
                        LockMode.INTENTION_EXCLUSIVE)


def lock_tuple_read(lockmgr: LockManager, owner: int, rel_oid: int,
                    tid: TID) -> Iterator:
    """Index-scan tuple read: IS on the relation + S on the tuple."""
    yield from lock_relation_read_intent(lockmgr, owner, rel_oid)
    yield from _acquire(lockmgr, owner, data_tuple_tag(rel_oid, tid),
                        LockMode.SHARE)


def lock_tuple_write(lockmgr: LockManager, owner: int, rel_oid: int,
                     tid: TID) -> Iterator:
    """Write: IX on the relation + X on the tuple."""
    yield from lock_relation_write_intent(lockmgr, owner, rel_oid)
    yield from _acquire(lockmgr, owner, data_tuple_tag(rel_oid, tid),
                        LockMode.EXCLUSIVE)


def lock_index_page_read(lockmgr: LockManager, owner: int, index_oid: int,
                         page_no: int) -> Iterator:
    """Index-range (gap) read lock at page granularity."""
    yield from _acquire(lockmgr, owner, index_page_tag(index_oid, page_no),
                        LockMode.SHARE)


def lock_index_page_write(lockmgr: LockManager, owner: int, index_oid: int,
                          page_no: int) -> Iterator:
    """Insert into an index page: conflicts with readers' gap locks."""
    yield from _acquire(lockmgr, owner, index_page_tag(index_oid, page_no),
                        LockMode.EXCLUSIVE)


def s2pl_visible(tup, view: TxnView, clog: CommitLog) -> bool:
    """Latest-committed read semantics for S2PL.

    Under 2PL, a reader holds locks that keep the versions it reads
    stable, so it simply reads the newest committed version (or its
    own uncommitted writes). Command-id rules still apply to our own
    writes (Halloween protection).
    """
    xmin = tup.xmin
    if clog.did_abort(xmin):
        return False
    if xmin in view.xids:
        if tup.cmin >= view.curcid:
            return False
    elif not clog.did_commit(xmin):
        # In-progress foreign writer: its X lock should have blocked
        # us; being here means we locked first and it is invisible.
        return False
    xmax = tup.xmax
    if xmax == INVALID_XID or tup.xmax_lock_only or clog.did_abort(xmax):
        return True
    if xmax in view.xids:
        return tup.cmax >= view.curcid
    return not clog.did_commit(xmax)
