"""Strict two-phase locking baseline (paper section 8).

The paper compared SSI against "a simple implementation of strict
two-phase locking for PostgreSQL" that reused the SSI lock manager's
support for index-range and multigranularity locking, but acquired
"classic" read locks in the heavyweight lock manager instead of SIREAD
locks. This package does the same: blocking S/X locks with IS/IX
intention modes on relations, tuple-granularity data locks, and
index-page range locks, all held until transaction end, with the
heavyweight manager's deadlock detector resolving cycles.

The serializability guarantee holds when *all* concurrent sessions run
in S2PL mode, exactly as in the paper's benchmark configuration.
"""

from repro.s2pl.locking import (data_rel_tag, data_tuple_tag,
                                index_page_tag, lock_index_page_read,
                                lock_index_page_write, lock_relation_read,
                                lock_tuple_read, lock_tuple_write,
                                s2pl_visible)

__all__ = [
    "data_rel_tag",
    "data_tuple_tag",
    "index_page_tag",
    "lock_relation_read",
    "lock_tuple_read",
    "lock_tuple_write",
    "lock_index_page_read",
    "lock_index_page_write",
    "s2pl_visible",
]
