"""Wait conditions.

Executor generators yield these when a statement must suspend; the
deterministic scheduler parks the client until ``ready`` is true, then
resumes the generator exactly where it stopped (no statement restart,
so partial statement work is never re-applied).

Two kinds exist:

* :class:`repro.locks.manager.LockRequest` -- queued heavyweight lock
  acquisitions (table locks, xid waits for tuple write conflicts, and
  every S2PL data lock);
* :class:`SafeSnapshotWait` -- a DEFERRABLE read-only transaction
  blocked until its snapshot is proven safe or unsafe (section 4.3).
"""

from __future__ import annotations


class Yield:
    """An always-ready wait: the statement voluntarily yields the
    processor mid-scan so long statements interleave with other
    clients' work, as they would on real hardware. Sequential and
    index scans yield every few pages; this is what lets a long
    read-only query's snapshot become safe *during* the scan
    (section 4.2) and lets writers block behind long S2PL scans."""

    ready = True

    def describe(self) -> str:
        return "voluntary yield"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Yield>"


#: Shared instance; the condition carries no state.
YIELD = Yield()


class SafeSnapshotWait:
    """Deferrable transaction waiting for its snapshot's safety to be
    decided by the completion of concurrent read/write transactions."""

    def __init__(self, sxact) -> None:
        self.sxact = sxact

    @property
    def ready(self) -> bool:
        return self.sxact.ro_safe or self.sxact.ro_unsafe

    def describe(self) -> str:
        return f"safe-snapshot wait for sxact {self.sxact.xid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SafeSnapshotWait {self.describe()}>"
