"""The batch-processing workload (paper Figure 2 / section 2.1.2).

Three transaction types over a control table (current batch number)
and a receipts table:

* NEW-RECEIPT: read the current batch number, insert a receipt tagged
  with it;
* CLOSE-BATCH: increment the current batch number;
* REPORT (read-only): read the current batch number x, total the
  receipts of batch x-1.

Serializable invariant: once a REPORT has shown the total for a batch,
that total can never change. Under SI the Figure 2 interleaving
violates it silently; ``violations(db)`` counts such cases after a run.
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run
from typing import Dict, List, Tuple

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload


class ReceiptsWorkload(Workload):
    name = "receipts"

    def __init__(self, new_receipt_weight: float = 0.65,
                 close_batch_weight: float = 0.1,
                 report_weight: float = 0.25) -> None:
        total = new_receipt_weight + close_batch_weight + report_weight
        self.w_new = new_receipt_weight / total
        self.w_close = close_batch_weight / total
        self._rid = 0
        #: (batch, total) pairs observed by committed REPORTs.
        self.reports: List[Tuple[int, int]] = []

    def setup(self, db, rng: random.Random) -> None:
        db.create_table("control", ["id", "batch"], key="id")
        db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
        db.create_index("receipts", "batch")
        session = db.session()
        session.insert("control", {"id": 0, "batch": 1})

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        draw = rng.random()
        if draw < self.w_new:
            self._rid += 1
            rid = self._rid
            amount = rng.randrange(1, 100)

            def new_receipt(rid=rid, amount=amount, iso=isolation):
                yield ops.begin(iso)
                row = yield ops.select("control", Eq("id", 0))
                batch = row[0]["batch"]
                yield ops.insert("receipts", {"rid": rid, "batch": batch,
                                              "amount": amount})
                yield ops.commit()

            return ("new_receipt", new_receipt)

        if draw < self.w_new + self.w_close:
            def close_batch(iso=isolation):
                yield ops.begin(iso)
                yield ops.update("control", Eq("id", 0),
                                 lambda r: {"batch": r["batch"] + 1})
                yield ops.commit()

            return ("close_batch", close_batch)

        read_only = isolation is IsolationLevel.SERIALIZABLE

        def report(iso=isolation, ro=read_only):
            yield ops.begin(iso, read_only=ro)
            row = yield ops.select("control", Eq("id", 0))
            batch = row[0]["batch"] - 1
            rows = yield ops.select("receipts", Eq("batch", batch))
            total = sum(r["amount"] for r in rows)
            yield ops.commit()
            # Reached only if the commit succeeded.
            self.reports.append((batch, total))

        return ("report", report)

    # -- invariant ----------------------------------------------------------
    def violations(self, db) -> List[Tuple[int, int, int]]:
        """(batch, reported total, final total) for every report whose
        batch total later changed -- the paper's silent corruption."""
        session = db.session()
        finals: Dict[int, int] = {}
        for row in session.select("receipts"):
            finals[row["batch"]] = finals.get(row["batch"], 0) + row["amount"]
        out = []
        for batch, total in self.reports:
            final = finals.get(batch, 0)
            if final != total:
                out.append((batch, total, final))
        return out
