"""DBT-2++ : a scaled-down TPC-C-like mix with the TPC-C++ credit
check (paper section 8.2).

TPC-C proper is serializable under plain snapshot isolation, so the
paper added Cahill's "credit check" transaction, which closes a cycle
of dependencies with NEW-ORDER when run concurrently. The read-only
fraction of the mix is a parameter (the x-axis of Figure 5): read-only
transactions are ORDER-STATUS and STOCK-LEVEL, read/write ones are
NEW-ORDER, PAYMENT, DELIVERY, and CREDIT-CHECK in their standard
relative proportions.

Scale is laptop-sized (a few warehouses, tens of customers); composite
TPC-C keys are flattened to integers so every table has a B+-tree
primary index:

* district key  = w * 100 + d
* customer key  = (w * 100 + d) * 1000 + c
* stock key     = w * 100000 + i
* order key     = district key * 100000 + o_id
* order line key = order key * 100 + line number
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run
from typing import List, Tuple

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import And, Between, Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload


def district_key(w: int, d: int) -> int:
    return w * 100 + d


def customer_key(w: int, d: int, c: int) -> int:
    return district_key(w, d) * 1000 + c


def stock_key(w: int, i: int) -> int:
    return w * 100_000 + i


def order_key(w: int, d: int, o_id: int) -> int:
    return district_key(w, d) * 100_000 + o_id


class DBT2PP(Workload):
    name = "dbt2pp"

    #: Relative weights of the read/write transactions (the standard
    #: TPC-C proportions, with a slice for the credit check).
    RW_MIX: List[Tuple[str, float]] = [
        ("new_order", 0.46),
        ("payment", 0.44),
        ("delivery", 0.05),
        ("credit_check", 0.05),
    ]
    #: Relative weights of the read-only transactions.
    RO_MIX: List[Tuple[str, float]] = [
        ("order_status", 0.5),
        ("stock_level", 0.5),
    ]

    def __init__(self, warehouses: int = 2, districts: int = 10,
                 customers_per_district: int = 20, items: int = 50,
                 read_only_fraction: float = 0.08,
                 items_per_order: Tuple[int, int] = (3, 6),
                 remote_fraction: float = 0.10) -> None:
        self.warehouses = warehouses
        self.districts = districts
        self.customers = customers_per_district
        self.items = items
        self.read_only_fraction = read_only_fraction
        self.items_per_order = items_per_order
        #: Probability that a transaction touches a random district
        #: instead of the client's home district. TPC-C binds each
        #: terminal to a home (warehouse, district); without that
        #: binding our slow-motion simulation has every client
        #: colliding on the district rows, which the paper's
        #: de-contended DBT-2++ variant explicitly avoided.
        self.remote_fraction = remote_fraction
        #: Orders pre-loaded per district (TPC-C ships with 3000; even
        #: a handful spreads the order-table B+-trees across leaf
        #: pages, avoiding the everything-on-one-empty-leaf gap-lock
        #: collisions a cold database would suffer).
        self.initial_orders = 8
        self._homes: dict = {}
        self._next_home = 0

    # ------------------------------------------------------------------
    def setup(self, db, rng: random.Random) -> None:
        db.create_table("warehouse", ["w_id", "w_tax"], key="w_id")
        db.create_table("district",
                        ["d_key", "w_id", "d_id", "d_next_o_id", "d_ytd"],
                        key="d_key")
        db.create_table("customer",
                        ["c_key", "w_id", "d_id", "c_id", "c_balance",
                         "c_credit_lim", "c_credit", "c_ytd"],
                        key="c_key")
        db.create_table("item", ["i_id", "i_price"], key="i_id")
        db.create_table("stock", ["s_key", "w_id", "i_id", "s_quantity"],
                        key="s_key")
        db.create_table("orders",
                        ["o_key", "d_key", "o_id", "c_key", "o_carrier",
                         "o_ol_cnt"],
                        key="o_key")
        db.create_index("orders", "c_key")
        db.create_table("order_line",
                        ["ol_key", "o_key", "i_id", "ol_amount",
                         "ol_delivered"],
                        key="ol_key")
        db.create_index("order_line", "o_key")
        db.create_table("new_order", ["no_key", "d_key"], key="no_key")

        session = db.session()
        session.begin()
        for w in range(self.warehouses):
            session.insert("warehouse", {"w_id": w, "w_tax": 0.05})
            for i in range(self.items):
                session.insert("stock", {"s_key": stock_key(w, i),
                                         "w_id": w, "i_id": i,
                                         "s_quantity": 50 + rng.randrange(50)})
            for d in range(self.districts):
                session.insert("district", {
                    "d_key": district_key(w, d), "w_id": w, "d_id": d,
                    "d_next_o_id": self.initial_orders + 1, "d_ytd": 0.0})
                for c in range(self.customers):
                    session.insert("customer", {
                        "c_key": customer_key(w, d, c), "w_id": w,
                        "d_id": d, "c_id": c, "c_balance": 0.0,
                        "c_credit_lim": 500.0, "c_credit": "GC",
                        "c_ytd": 0.0})
                for o_id in range(1, self.initial_orders + 1):
                    self._load_order(session, rng, w, d, o_id)
        for i in range(self.items):
            session.insert("item", {"i_id": i,
                                    "i_price": 1 + rng.randrange(100)})
        session.commit()

    def _load_order(self, session, rng: random.Random, w: int, d: int,
                    o_id: int) -> None:
        dk = district_key(w, d)
        ok = order_key(w, d, o_id)
        c = rng.randrange(self.customers)
        n_lines = rng.randint(*self.items_per_order)
        delivered = o_id <= self.initial_orders // 2
        for line_no in range(n_lines):
            session.insert("order_line", {
                "ol_key": ok * 100 + line_no, "o_key": ok,
                "i_id": rng.randrange(self.items),
                "ol_amount": float(rng.randint(1, 100)),
                "ol_delivered": delivered})
        session.insert("orders", {
            "o_key": ok, "d_key": dk, "o_id": o_id,
            "c_key": customer_key(w, d, c),
            "o_carrier": 7 if delivered else None, "o_ol_cnt": n_lines})
        if not delivered:
            session.insert("new_order", {"no_key": ok, "d_key": dk})

    # ------------------------------------------------------------------
    def _pick(self, rng: random.Random, mix: List[Tuple[str, float]]) -> str:
        total = sum(w for _n, w in mix)
        draw = rng.random() * total
        for name, weight in mix:
            draw -= weight
            if draw <= 0:
                return name
        return mix[-1][0]

    def _home(self, rng: random.Random) -> Tuple[int, int]:
        key = id(rng)
        if key not in self._homes:
            slot = self._next_home
            self._next_home += 1
            self._homes[key] = (slot % self.warehouses,
                                (slot // self.warehouses) % self.districts)
        return self._homes[key]

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        if rng.random() < self.read_only_fraction:
            kind = self._pick(rng, self.RO_MIX)
        else:
            kind = self._pick(rng, self.RW_MIX)
        if rng.random() < self.remote_fraction:
            w = rng.randrange(self.warehouses)
            d = rng.randrange(self.districts)
        else:
            w, d = self._home(rng)
        c = rng.randrange(self.customers)
        builder = getattr(self, f"_txn_{kind}")
        return (kind, builder(rng, isolation, w, d, c))

    # -- read/write transactions -------------------------------------------
    def _txn_new_order(self, rng, iso, w, d, c):
        n_items = rng.randint(*self.items_per_order)
        lines = [(rng.randrange(self.items), rng.randint(1, 5))
                 for _ in range(n_items)]

        def program(iso=iso, w=w, d=d, c=c, lines=tuple(lines)):
            yield ops.begin(iso)
            yield ops.select("warehouse", Eq("w_id", w))
            dk = district_key(w, d)
            district = (yield ops.select("district", Eq("d_key", dk)))[0]
            o_id = district["d_next_o_id"]
            yield ops.update("district", Eq("d_key", dk),
                             {"d_next_o_id": o_id + 1})
            yield ops.select("customer", Eq("c_key", customer_key(w, d, c)))
            ok = order_key(w, d, o_id)
            total = 0.0
            for line_no, (i_id, qty) in enumerate(lines):
                item = (yield ops.select("item", Eq("i_id", i_id)))[0]
                sk = stock_key(w, i_id)
                stock = (yield ops.select("stock", Eq("s_key", sk)))[0]
                quantity = stock["s_quantity"] - qty
                if quantity < 10:
                    quantity += 91
                yield ops.update("stock", Eq("s_key", sk),
                                 {"s_quantity": quantity})
                amount = item["i_price"] * qty
                total += amount
                yield ops.insert("order_line", {
                    "ol_key": ok * 100 + line_no, "o_key": ok,
                    "i_id": i_id, "ol_amount": amount,
                    "ol_delivered": False})
            yield ops.insert("orders", {
                "o_key": ok, "d_key": dk, "o_id": o_id,
                "c_key": customer_key(w, d, c), "o_carrier": None,
                "o_ol_cnt": len(lines)})
            yield ops.insert("new_order", {"no_key": ok, "d_key": dk})
            yield ops.commit()

        return program

    def _txn_payment(self, rng, iso, w, d, c):
        amount = float(rng.randint(1, 50))

        def program(iso=iso, w=w, d=d, c=c, amount=amount):
            yield ops.begin(iso)
            dk = district_key(w, d)
            yield ops.update("district", Eq("d_key", dk),
                             lambda r: {"d_ytd": r["d_ytd"] + amount})
            ck = customer_key(w, d, c)
            yield ops.update("customer", Eq("c_key", ck),
                             lambda r: {"c_balance": r["c_balance"] - amount,
                                        "c_ytd": r["c_ytd"] + amount})
            yield ops.commit()

        return program

    def _txn_delivery(self, rng, iso, w, d, c):
        def program(iso=iso, w=w, d=d):
            yield ops.begin(iso)
            dk = district_key(w, d)
            lo, hi = dk * 100_000, (dk + 1) * 100_000 - 1
            pending = yield ops.select("new_order", Between("no_key", lo, hi))
            if pending:
                ok = min(p["no_key"] for p in pending)
                yield ops.delete("new_order", Eq("no_key", ok))
                yield ops.update("orders", Eq("o_key", ok),
                                 {"o_carrier": 7})
                lines = yield ops.select("order_line", Eq("o_key", ok))
                total = sum(l["ol_amount"] for l in lines)
                yield ops.update("order_line", Eq("o_key", ok),
                                 {"ol_delivered": True})
                order = (yield ops.select("orders", Eq("o_key", ok)))[0]
                yield ops.update(
                    "customer", Eq("c_key", order["c_key"]),
                    lambda r: {"c_balance": r["c_balance"] + total})
            yield ops.commit()

        return program

    def _txn_credit_check(self, rng, iso, w, d, c):
        """Cahill's TPC-C++ credit check: reads the customer's balance
        plus the amounts of their undelivered orders and sets the
        credit status. Concurrent NEW-ORDER transactions for the same
        customer create the rw/rw cycle SI misses."""

        def program(iso=iso, w=w, d=d, c=c):
            yield ops.begin(iso)
            ck = customer_key(w, d, c)
            cust = (yield ops.select("customer", Eq("c_key", ck)))[0]
            orders = yield ops.select("orders", Eq("c_key", ck))
            open_amount = 0.0
            for order in orders:
                if order["o_carrier"] is None:
                    lines = yield ops.select("order_line",
                                             Eq("o_key", order["o_key"]))
                    open_amount += sum(l["ol_amount"] for l in lines)
            status = ("BC" if cust["c_balance"] + open_amount
                      > cust["c_credit_lim"] else "GC")
            yield ops.update("customer", Eq("c_key", ck),
                             {"c_credit": status})
            yield ops.commit()

        return program

    # -- read-only transactions ---------------------------------------------
    def _txn_order_status(self, rng, iso, w, d, c):
        read_only = iso is IsolationLevel.SERIALIZABLE

        def program(iso=iso, w=w, d=d, c=c, ro=read_only):
            yield ops.begin(iso, read_only=ro)
            ck = customer_key(w, d, c)
            yield ops.select("customer", Eq("c_key", ck))
            orders = yield ops.select("orders", Eq("c_key", ck))
            if orders:
                last = max(orders, key=lambda o: o["o_id"])
                yield ops.select("order_line", Eq("o_key", last["o_key"]))
            yield ops.commit()

        return program

    def _txn_stock_level(self, rng, iso, w, d, c):
        read_only = iso is IsolationLevel.SERIALIZABLE
        threshold = rng.randint(30, 60)

        def program(iso=iso, w=w, d=d, threshold=threshold, ro=read_only):
            yield ops.begin(iso, read_only=ro)
            dk = district_key(w, d)
            district = (yield ops.select("district", Eq("d_key", dk)))[0]
            next_o = district["d_next_o_id"]
            lo = order_key(w, d, max(1, next_o - 5)) * 100
            hi = order_key(w, d, next_o) * 100
            lines = yield ops.select("order_line", Between("ol_key", lo, hi))
            item_ids = {l["i_id"] for l in lines}
            low = 0
            for i_id in sorted(item_ids):
                stock = yield ops.select("stock",
                                         Eq("s_key", stock_key(w, i_id)))
                if stock and stock[0]["s_quantity"] < threshold:
                    low += 1
            yield ops.commit()

        return program
