"""Workload interface and the standard run harness."""

from __future__ import annotations

import abc
import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run
from typing import Callable, Optional

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.sim.client import Client, TxnSpec
from repro.sim.scheduler import Scheduler, SimResult


class Workload(abc.ABC):
    """A transaction mix over a schema.

    Transaction *parameters* (keys, amounts) are drawn inside
    :meth:`next_transaction`, so the factory it returns regenerates the
    same logical transaction on retry -- matching the paper's safe
    retry setting, where the middleware re-submits the failed
    transaction unchanged.
    """

    name: str = "workload"

    @abc.abstractmethod
    def setup(self, db: Database, rng: random.Random) -> None:
        """Create the schema and load initial data."""

    @abc.abstractmethod
    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        """Draw one transaction: (name, restartable generator factory)."""


def run_workload(workload: Workload, *,
                 isolation: IsolationLevel,
                 n_clients: int = 8,
                 max_ticks: float = 50_000.0,
                 max_steps: Optional[int] = None,
                 seed: int = 1,
                 config: Optional[EngineConfig] = None,
                 db: Optional[Database] = None) -> SimResult:
    """Set up a database, spawn clients, and run the simulation.

    Returns the aggregate SimResult; ``result.throughput`` is the
    committed-transactions-per-kilotick figure the benchmarks report.
    """
    setup_rng = random.Random(seed ^ 0x5EED)
    if db is None:
        db = Database(config or EngineConfig())
    workload.setup(db, setup_rng)
    scheduler = Scheduler(db, seed=seed)
    for cid in range(n_clients):
        # Stable per-client seed (str hashes are salted per process,
        # so avoid hash()).
        client_rng = random.Random(seed * 1_000_003 + cid * 7919)

        def source(rng=client_rng) -> Optional[TxnSpec]:
            return workload.next_transaction(rng, isolation)

        scheduler.add_client(Client(cid, db.session(), source))
    return scheduler.run(max_ticks=max_ticks, max_steps=max_steps)
