"""The doctors on-call workload (paper Figure 1 / section 2.1.1).

Every transaction checks that at least two doctors are on call and, if
so, takes one off call -- individually a correct way to enforce the
invariant "at least one doctor on call". Under snapshot isolation,
concurrent write-skew can drive the on-call count to zero; under
SERIALIZABLE (or S2PL) it cannot.
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload


class DoctorsWorkload(Workload):
    name = "doctors"

    def __init__(self, n_doctors: int = 4,
                 transactions_per_client: int = 4) -> None:
        self.n_doctors = n_doctors
        self.transactions_per_client = transactions_per_client
        self._issued: dict = {}

    def setup(self, db, rng: random.Random) -> None:
        db.create_table("doctors", ["name", "oncall"], key="name")
        session = db.session()
        session.begin()
        for i in range(self.n_doctors):
            session.insert("doctors", {"name": f"doc{i}", "oncall": True})
        session.commit()

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        # Each client runs a bounded number of transactions so the
        # workload terminates and the invariant can be checked.
        key = id(rng)
        issued = self._issued.get(key, 0)
        if issued >= self.transactions_per_client:
            return None
        self._issued[key] = issued + 1
        doctor = f"doc{rng.randrange(self.n_doctors)}"

        def take_off_call(doctor=doctor, iso=isolation):
            yield ops.begin(iso)
            rows = yield ops.select("doctors", Eq("oncall", True))
            if len(rows) >= 2 and any(r["name"] == doctor for r in rows):
                yield ops.update("doctors", Eq("name", doctor),
                                 {"oncall": False})
            yield ops.commit()

        return ("take_off_call", take_off_call)

    # -- invariant --------------------------------------------------------
    def on_call_count(self, db) -> int:
        return len(db.session().select("doctors", Eq("oncall", True)))

    def invariant_holds(self, db) -> bool:
        """At least one doctor must remain on call."""
        return self.on_call_count(db) >= 1
