"""SIBENCH microbenchmark (paper section 8.1, from Cahill's thesis).

One table of N (key, value) pairs. The mix is half *update*
transactions (set a random key's value to a new number) and half
*query* transactions (scan the whole table for the key with the lowest
value). Every query conflicts with every concurrent update
(rw-conflict), which is exactly the case where locking serializability
collapses -- updates block scans and vice versa -- while SI and SSI
let them run concurrently (Figure 4).
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload


class SIBench(Workload):
    name = "sibench"

    def __init__(self, table_size: int = 100,
                 update_fraction: float = 0.5,
                 declare_queries_read_only: bool = True) -> None:
        self.table_size = table_size
        self.update_fraction = update_fraction
        #: Queries run as BEGIN READ ONLY so the safe-snapshot
        #: machinery (section 4.2) can release them from SSI tracking;
        #: Figure 4 attributes SSI's shrinking overhead at large table
        #: sizes to exactly this.
        self.declare_queries_read_only = declare_queries_read_only
        self._counter = 0

    def setup(self, db, rng: random.Random) -> None:
        db.create_table("sibench", ["k", "v"], key="k")
        session = db.session()
        session.begin()
        for k in range(self.table_size):
            session.insert("sibench", {"k": k, "v": rng.randrange(10_000)})
        session.commit()

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        if rng.random() < self.update_fraction:
            key = rng.randrange(self.table_size)
            value = rng.randrange(10_000)

            def update_txn(key=key, value=value, iso=isolation):
                yield ops.begin(iso)
                yield ops.update("sibench", Eq("k", key), {"v": value})
                yield ops.commit()

            return ("update", update_txn)

        read_only = (self.declare_queries_read_only
                     and isolation is IsolationLevel.SERIALIZABLE)

        def query_txn(iso=isolation, ro=read_only):
            yield ops.begin(iso, read_only=ro)
            rows = yield ops.select("sibench")
            # Find the key with the lowest value (the result is unused;
            # the scan's read footprint is the point).
            min(rows, key=lambda r: (r["v"], r["k"]))
            yield ops.commit()

        return ("query", query_txn)
