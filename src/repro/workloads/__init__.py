"""Benchmark workloads from the paper's evaluation (section 8).

* :mod:`repro.workloads.sibench` -- the SIBENCH microbenchmark
  (section 8.1): N-row table, 50% single-row updates / 50% full-scan
  min-value queries;
* :mod:`repro.workloads.dbt2pp` -- a scaled-down DBT-2++/TPC-C++
  transaction mix (section 8.2), including Cahill's credit-check
  transaction that makes TPC-C non-serializable under SI, with a
  tunable read-only fraction;
* :mod:`repro.workloads.rubis` -- a RUBiS-like auction-site bidding
  mix (section 8.3), 85% read-only;
* :mod:`repro.workloads.receipts`, :mod:`repro.workloads.doctors` --
  the paper's motivating anomaly examples (sections 2.1.1-2.1.2) as
  runnable workloads;
* :mod:`repro.workloads.ycsb` -- a YCSB-style Zipfian key-value mix
  (read fast-path / SIREAD promotion stress);
* :mod:`repro.workloads.reporting` -- order entry plus join-shaped
  read-only regional reports (zero-copy scan stress).
"""

from repro.workloads.base import Workload, run_workload
from repro.workloads.sibench import SIBench
from repro.workloads.dbt2pp import DBT2PP
from repro.workloads.rubis import RubisBidding
from repro.workloads.doctors import DoctorsWorkload
from repro.workloads.receipts import ReceiptsWorkload
from repro.workloads.ycsb import YCSB
from repro.workloads.reporting import ReportingWorkload

__all__ = [
    "Workload",
    "run_workload",
    "SIBench",
    "DBT2PP",
    "RubisBidding",
    "DoctorsWorkload",
    "ReceiptsWorkload",
    "YCSB",
    "ReportingWorkload",
]
