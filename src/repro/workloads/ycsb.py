"""A YCSB-style key-value mix with Zipfian access skew.

The classic cloud-serving benchmark shape: point reads, read-modify-
write updates, inserts and short range scans over a single table, with
key popularity following a Zipfian distribution (a small hot set takes
most of the traffic). Under SSI the hot keys concentrate rw-conflicts,
making this the stress workload for the read fast path and the
tuple-to-page SIREAD promotion paths; it carries no intended anomaly.

The Zipfian draw is a precomputed CDF walked by ``bisect`` on the
client rng -- deterministic for a given (seed, table_size, theta).
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run
from bisect import bisect_left
from typing import List

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Between, Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload


class YCSB(Workload):
    name = "ycsb"

    def __init__(self, table_size: int = 200, *,
                 read_fraction: float = 0.5,
                 update_fraction: float = 0.35,
                 insert_fraction: float = 0.05,
                 scan_fraction: float = 0.10,
                 scan_window: int = 10,
                 theta: float = 0.8) -> None:
        total = (read_fraction + update_fraction + insert_fraction
                 + scan_fraction)
        self.w_read = read_fraction / total
        self.w_update = update_fraction / total
        self.w_insert = insert_fraction / total
        self.table_size = table_size
        self.scan_window = scan_window
        self._next_key = table_size
        # Zipfian CDF over ranks 1..N: weight(rank) = 1/rank^theta.
        cdf: List[float] = []
        acc = 0.0
        for rank in range(1, table_size + 1):
            acc += 1.0 / (rank ** theta)
            cdf.append(acc)
        self._cdf = cdf
        self._cdf_total = acc

    def _zipf_key(self, rng: random.Random) -> int:
        """Rank r (0-based) is the r-th most popular key; identity
        mapping rank -> key keeps the hot set clustered on low ids
        (and therefore on few heap pages, the worst case for page-level
        SIREAD granularity)."""
        return bisect_left(self._cdf, rng.random() * self._cdf_total)

    def setup(self, db, rng: random.Random) -> None:
        db.create_table("usertable", ["k", "v", "pad"], key="k")
        session = db.session()
        for k in range(self.table_size):
            session.insert("usertable",
                           {"k": k, "v": rng.randrange(1000), "pad": k % 7})

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        draw = rng.random()
        if draw < self.w_read:
            key = self._zipf_key(rng)

            def read(key=key, iso=isolation):
                yield ops.begin(iso)
                yield ops.scan_rows("usertable", Eq("k", key))
                yield ops.commit()

            return ("read", read)

        if draw < self.w_read + self.w_update:
            key = self._zipf_key(rng)
            delta = rng.randrange(1, 10)

            def rmw(key=key, delta=delta, iso=isolation):
                yield ops.begin(iso)
                rows = yield ops.select("usertable", Eq("k", key))
                if rows:
                    yield ops.update("usertable", Eq("k", key),
                                     lambda r, d=delta: {"v": r["v"] + d})
                yield ops.commit()

            return ("update", rmw)

        if draw < self.w_read + self.w_update + self.w_insert:
            self._next_key += 1
            key = self._next_key
            value = rng.randrange(1000)

            def insert(key=key, value=value, iso=isolation):
                yield ops.begin(iso)
                yield ops.insert("usertable",
                                 {"k": key, "v": value, "pad": key % 7})
                yield ops.commit()

            return ("insert", insert)

        start = self._zipf_key(rng)

        def scan(start=start, iso=isolation):
            yield ops.begin(iso)
            rows = yield ops.scan_rows(
                "usertable", Between("k", start,
                                     start + self.scan_window - 1))
            # Consume immediately (zero-copy rows must not be held).
            sum(r["v"] for r in rows)
            yield ops.commit()

        return ("scan", scan)
