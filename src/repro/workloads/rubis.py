"""RUBiS-like auction-site workload, "bidding" mix (paper section 8.3).

85% read-only interactions (browsing categories, viewing items, bid
histories, user pages) and 15% read/write ones (placing bids, leaving
comments, registering items, buy-now). The paper highlights the
conflict pattern: "queries that list the current bids on all items in
a particular category conflict with requests to bid on those items" --
reproduced here by ``search_category`` scanning items by category
(reading each item's current max bid) while ``place_bid`` updates it.
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run
from typing import List, Tuple

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload


class RubisBidding(Workload):
    name = "rubis"

    RO_MIX: List[Tuple[str, float]] = [
        ("search_category", 0.35),
        ("view_item", 0.35),
        ("view_bid_history", 0.15),
        ("view_user", 0.15),
    ]
    RW_MIX: List[Tuple[str, float]] = [
        ("place_bid", 0.60),
        ("store_comment", 0.20),
        ("register_item", 0.10),
        ("buy_now", 0.10),
    ]

    def __init__(self, n_users: int = 30, n_items: int = 60,
                 n_categories: int = 6,
                 read_only_fraction: float = 0.85) -> None:
        self.n_users = n_users
        self.n_items = n_items
        self.n_categories = n_categories
        self.read_only_fraction = read_only_fraction
        self._next_item = n_items
        self._next_bid = 0
        self._next_comment = 0

    def setup(self, db, rng: random.Random) -> None:
        db.create_table("users", ["u_id", "name", "rating"], key="u_id")
        db.create_table("items",
                        ["i_id", "category", "seller", "max_bid", "nb_bids",
                         "open"],
                        key="i_id")
        db.create_index("items", "category")
        db.create_table("bids", ["b_id", "i_id", "u_id", "amount"],
                        key="b_id")
        db.create_index("bids", "i_id")
        db.create_table("comments",
                        ["cm_id", "to_u", "from_u", "rating", "text"],
                        key="cm_id")
        db.create_index("comments", "to_u")
        session = db.session()
        session.begin()
        for u in range(self.n_users):
            session.insert("users", {"u_id": u, "name": f"user{u}",
                                     "rating": 0})
        for i in range(self.n_items):
            session.insert("items", {
                "i_id": i, "category": i % self.n_categories,
                "seller": rng.randrange(self.n_users),
                "max_bid": 0, "nb_bids": 0, "open": True})
        session.commit()

    # ------------------------------------------------------------------
    def _pick(self, rng: random.Random, mix: List[Tuple[str, float]]) -> str:
        draw = rng.random()
        for name, weight in mix:
            draw -= weight
            if draw <= 0:
                return name
        return mix[-1][0]

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        if rng.random() < self.read_only_fraction:
            kind = self._pick(rng, self.RO_MIX)
        else:
            kind = self._pick(rng, self.RW_MIX)
        builder = getattr(self, f"_txn_{kind}")
        return (kind, builder(rng, isolation))

    # -- read-only interactions ------------------------------------------
    def _ro(self, iso) -> bool:
        return iso is IsolationLevel.SERIALIZABLE

    def _txn_search_category(self, rng, iso):
        category = rng.randrange(self.n_categories)

        def program(iso=iso, category=category, ro=self._ro(iso)):
            yield ops.begin(iso, read_only=ro)
            items = yield ops.select("items", Eq("category", category))
            # Render the listing: current top bid per open item.
            sum(i["max_bid"] for i in items if i["open"])
            yield ops.commit()

        return program

    def _txn_view_item(self, rng, iso):
        item = rng.randrange(self.n_items)

        def program(iso=iso, item=item, ro=self._ro(iso)):
            yield ops.begin(iso, read_only=ro)
            yield ops.select("items", Eq("i_id", item))
            yield ops.select("bids", Eq("i_id", item))
            yield ops.commit()

        return program

    def _txn_view_bid_history(self, rng, iso):
        item = rng.randrange(self.n_items)

        def program(iso=iso, item=item, ro=self._ro(iso)):
            yield ops.begin(iso, read_only=ro)
            bids = yield ops.select("bids", Eq("i_id", item))
            for bid in bids[:5]:
                yield ops.select("users", Eq("u_id", bid["u_id"]))
            yield ops.commit()

        return program

    def _txn_view_user(self, rng, iso):
        user = rng.randrange(self.n_users)

        def program(iso=iso, user=user, ro=self._ro(iso)):
            yield ops.begin(iso, read_only=ro)
            yield ops.select("users", Eq("u_id", user))
            yield ops.select("comments", Eq("to_u", user))
            yield ops.commit()

        return program

    # -- read/write interactions --------------------------------------------
    def _txn_place_bid(self, rng, iso):
        item = rng.randrange(self.n_items)
        user = rng.randrange(self.n_users)
        increment = rng.randint(1, 10)
        self._next_bid += 1
        bid_id = self._next_bid

        def program(iso=iso, item=item, user=user, increment=increment,
                    bid_id=bid_id):
            yield ops.begin(iso)
            rows = yield ops.select("items", Eq("i_id", item))
            it = rows[0]
            if it["open"]:
                amount = it["max_bid"] + increment
                yield ops.insert("bids", {"b_id": bid_id, "i_id": item,
                                          "u_id": user, "amount": amount})
                yield ops.update("items", Eq("i_id", item),
                                 {"max_bid": amount,
                                  "nb_bids": it["nb_bids"] + 1})
            yield ops.commit()

        return program

    def _txn_store_comment(self, rng, iso):
        to_u = rng.randrange(self.n_users)
        from_u = rng.randrange(self.n_users)
        rating = rng.choice((-1, 0, 1))
        self._next_comment += 1
        cm_id = self._next_comment

        def program(iso=iso, to_u=to_u, from_u=from_u, rating=rating,
                    cm_id=cm_id):
            yield ops.begin(iso)
            yield ops.insert("comments", {"cm_id": cm_id, "to_u": to_u,
                                          "from_u": from_u, "rating": rating,
                                          "text": "..."})
            yield ops.update("users", Eq("u_id", to_u),
                             lambda r: {"rating": r["rating"] + rating})
            yield ops.commit()

        return program

    def _txn_register_item(self, rng, iso):
        seller = rng.randrange(self.n_users)
        category = rng.randrange(self.n_categories)
        self._next_item += 1
        item_id = self._next_item

        def program(iso=iso, seller=seller, category=category,
                    item_id=item_id):
            yield ops.begin(iso)
            yield ops.insert("items", {"i_id": item_id, "category": category,
                                       "seller": seller, "max_bid": 0,
                                       "nb_bids": 0, "open": True})
            yield ops.commit()

        return program

    def _txn_buy_now(self, rng, iso):
        item = rng.randrange(self.n_items)

        def program(iso=iso, item=item):
            yield ops.begin(iso)
            rows = yield ops.select("items", Eq("i_id", item))
            if rows and rows[0]["open"] and rows[0]["nb_bids"] == 0:
                yield ops.update("items", Eq("i_id", item), {"open": False})
            yield ops.commit()

        return program
