"""An order-entry + reporting mix (join-shaped read transactions).

Writers insert orders and keep each customer's ``balance`` equal to
the sum of their orders' amounts (one atomic transaction per order).
Reporters run a read-only regional report that scans both tables with
the zero-copy read path, joins them in the program, and cross-checks
the per-customer invariant -- the paper's "long report over a write
mix" shape that makes read-only SSI optimizations (safe snapshots,
SIREAD granularity promotion) earn their keep.

The invariant is transaction-local, so it holds at every isolation
level that gives statements a consistent snapshot; any recorded
violation indicates an engine bug, not an expected anomaly (contrast
:mod:`repro.workloads.receipts`).
"""

from __future__ import annotations

import random  # repro: noqa(DET001) -- seeded random.Random(seed) only; deterministic per run
from typing import Dict, List, Tuple

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Eq
from repro.sim import ops
from repro.sim.client import TxnSpec
from repro.workloads.base import Workload

REGIONS = ("north", "south", "east", "west")


class ReportingWorkload(Workload):
    name = "reporting"

    def __init__(self, n_customers: int = 40, *,
                 order_weight: float = 0.6,
                 settle_weight: float = 0.15,
                 report_weight: float = 0.25) -> None:
        total = order_weight + settle_weight + report_weight
        self.w_order = order_weight / total
        self.w_settle = settle_weight / total
        self.n_customers = n_customers
        self._oid = 0
        #: Committed reports: (region -> total) snapshots.
        self.reports: List[Dict[str, int]] = []
        #: (cid, balance, order total) triples that disagreed inside
        #: one report snapshot (must stay empty at every isolation).
        self.mismatches: List[Tuple[int, int, int]] = []

    def setup(self, db, rng: random.Random) -> None:
        db.create_table("customers", ["cid", "region", "balance"],
                        key="cid")
        db.create_table("orders", ["oid", "cid", "amount", "settled"],
                        key="oid")
        db.create_index("orders", "cid")
        session = db.session()
        for cid in range(self.n_customers):
            session.insert("customers",
                           {"cid": cid,
                            "region": REGIONS[cid % len(REGIONS)],
                            "balance": 0})

    def next_transaction(self, rng: random.Random,
                         isolation: IsolationLevel) -> TxnSpec:
        draw = rng.random()
        if draw < self.w_order:
            self._oid += 1
            oid = self._oid
            cid = rng.randrange(self.n_customers)
            amount = rng.randrange(1, 100)

            def place_order(oid=oid, cid=cid, amount=amount,
                            iso=isolation):
                yield ops.begin(iso)
                yield ops.insert("orders", {"oid": oid, "cid": cid,
                                            "amount": amount,
                                            "settled": 0})
                yield ops.update("customers", Eq("cid", cid),
                                 lambda r, a=amount:
                                 {"balance": r["balance"] + a})
                yield ops.commit()

            return ("place_order", place_order)

        if draw < self.w_order + self.w_settle:
            oid = rng.randrange(1, max(2, self._oid + 1))

            def settle(oid=oid, iso=isolation):
                yield ops.begin(iso)
                yield ops.update("orders", Eq("oid", oid),
                                 lambda r: {"settled": 1})
                yield ops.commit()

            return ("settle", settle)

        read_only = isolation is IsolationLevel.SERIALIZABLE

        def report(iso=isolation, ro=read_only):
            yield ops.begin(iso, read_only=ro)
            customers = yield ops.select("customers")
            orders = yield ops.scan_rows("orders")
            per_customer: Dict[int, int] = {}
            regional: Dict[str, int] = {}
            for row in orders:
                per_customer[row["cid"]] = (per_customer.get(row["cid"], 0)
                                            + row["amount"])
            mismatches = []
            for c in customers:
                total = per_customer.get(c["cid"], 0)
                regional[c["region"]] = (regional.get(c["region"], 0)
                                         + total)
                if total != c["balance"]:
                    mismatches.append((c["cid"], c["balance"], total))
            yield ops.commit()
            # Reached only if the commit succeeded.
            self.reports.append(regional)
            self.mismatches.extend(mismatches)

        return ("report", report)
