"""Deterministic concurrency simulator.

The paper measures wall-clock throughput of concurrent clients against
PostgreSQL on real hardware. Here, concurrency is simulated: client
transaction programs are Python generators yielding statement
descriptors; a seeded scheduler interleaves them one statement at a
time, suspending clients whose statements must wait (lock queues, safe
snapshots) and resuming them when their wait condition clears.

Time is a simulated clock: every statement is charged ticks according
to EngineConfig's CostModel -- tuples touched, lock-manager work units
(where SSI's tracking overhead and S2PL's lock maintenance show up),
and buffer misses (the disk-bound configurations). Throughput =
committed transactions / ticks. Because the paper's figures are
normalized to snapshot isolation, only these *relative* costs matter
(see DESIGN.md, "Substitutions").

Aborted transactions are retried by the client (the middleware retry
layer of section 3.3), so wasted work from serialization failures and
deadlocks is charged exactly as it would be on a real system.
"""

from repro.sim.ops import (begin, commit, delete, insert, rollback, select,
                           select_for_update, update, Op)
from repro.sim.client import Client, ClientStats, TxnOutcome
from repro.sim.scheduler import Scheduler, SchedulerPolicy, SimResult

__all__ = [
    "Op",
    "begin",
    "commit",
    "rollback",
    "select",
    "select_for_update",
    "insert",
    "update",
    "delete",
    "Client",
    "ClientStats",
    "TxnOutcome",
    "Scheduler",
    "SchedulerPolicy",
    "SimResult",
]
