"""The deterministic scheduler and simulated clock."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import random

from repro.config import CostModel
from repro.sim.client import Client, ClientStats

#: A scheduling policy: given the non-empty list of runnable clients
#: (in registration order), return the one to step next, or None to
#: stop the run early (used by the exploration driver to prune a
#: schedule subtree; see repro.explore).
SchedulerPolicy = Callable[[List[Client]], Optional[Client]]


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    ticks: float
    commits: int
    aborts: int
    serialization_failures: int
    deadlocks: int
    retries: int
    steps: int
    by_type: Dict[str, int] = field(default_factory=dict)
    client_stats: List[ClientStats] = field(default_factory=list)
    #: (txn name, start tick, end tick, attempts) across all clients.
    latencies: List = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Committed transactions per kilotick -- the paper's
        transactions/second, in simulated units. An empty run (zero
        ticks elapsed) has throughput 0.0, not a ZeroDivisionError."""
        if not self.ticks:
            return 0.0
        return self.commits / self.ticks * 1000.0

    @property
    def serialization_failure_rate(self) -> float:
        """Failures per transaction attempt (cf. Figure 6). A run with
        zero attempts (no commits, no aborts) has rate 0.0."""
        attempts = self.commits + self.aborts
        if not attempts:
            return 0.0
        return self.serialization_failures / attempts


class Scheduler:
    """Interleaves client steps, charging simulated time per statement.

    Picking the next runnable client is delegated to a pluggable
    *policy* (``pick(runnable) -> Client``). The default policy draws
    from a seeded RNG, so runs are reproducible byte-for-byte for the
    same seed; the schedule-exploration harness (repro.explore) plugs
    in deterministic policies to enumerate or replay specific
    interleavings. Blocked clients wake only when their wait condition
    reports ready (lock granted, safe snapshot decided).
    """

    def __init__(self, db, seed: int = 0,
                 cost: Optional[CostModel] = None,
                 policy: Optional[SchedulerPolicy] = None) -> None:
        self.db = db
        self.cost = cost or db.config.cost
        self.rng = random.Random(seed)
        self.policy: SchedulerPolicy = policy or self._default_pick
        self.clients: List[Client] = []
        self.clock = 0.0
        self.steps = 0
        self.block_events = 0
        self._last_counters = db.work_counters()

    def add_client(self, client: Client) -> None:
        self.clients.append(client)

    # ------------------------------------------------------------------
    def _default_pick(self, runnable: List[Client]) -> Optional[Client]:
        """Seeded-RNG policy: the original scheduler behaviour."""
        return self.rng.choice(runnable)

    # ------------------------------------------------------------------
    def _charge(self) -> float:
        """Convert engine work since the last statement into ticks."""
        counters = self.db.work_counters()
        prev = self._last_counters
        self._last_counters = counters
        cost = self.cost
        ticks = cost.base_op
        ticks += (counters["tuples_read"] - prev["tuples_read"]) * cost.tuple_read
        ticks += (counters["tuples_written"] - prev["tuples_written"]) * cost.tuple_write
        ticks += (counters["hw_lock_work"] - prev["hw_lock_work"]) * cost.hw_lock_work
        ticks += (counters["ssi_lock_work"] - prev["ssi_lock_work"]) * cost.ssi_lock_work
        ticks += (counters["io_misses"] - prev["io_misses"]) * cost.io_miss
        ticks += (counters["txns"] - prev["txns"]) * cost.txn_overhead
        ticks += (counters["deadlocks"] - prev["deadlocks"]) * cost.deadlock_penalty
        return ticks

    def _runnable(self) -> List[Client]:
        out = []
        for client in self.clients:
            if client.finished:
                continue
            if client.blocked:
                condition = client.wait_condition
                if getattr(condition, "ready", False):
                    client.on_wakeup()
                    out.append(client)
            else:
                out.append(client)
        return out

    def run(self, *, max_ticks: Optional[float] = None,
            max_steps: Optional[int] = None) -> SimResult:
        """Run until every client finishes or a limit is reached."""
        while True:
            if max_ticks is not None and self.clock >= max_ticks:
                break
            if max_steps is not None and self.steps >= max_steps:
                break
            runnable = self._runnable()
            if not runnable:
                unfinished = [c for c in self.clients if not c.finished]
                if not unfinished:
                    break
                # No runnable client and no external event source: the
                # waits can never clear. The deadlock detector should
                # make this unreachable.
                raise RuntimeError(
                    "scheduler stall: all unfinished clients are blocked "
                    "and none is ready -- "
                    + "; ".join(repr(c.wait_condition)
                                for c in unfinished if c.blocked))
            client = self.policy(runnable)
            if client is None:
                break  # policy declined to continue (exploration prune)
            was_blocked = client.blocked
            client.step(self.clock)
            self.steps += 1
            if client.blocked and not was_blocked and not getattr(
                    client.wait_condition, "ready", False):
                # A genuine lock suspension (not a voluntary Yield).
                self.block_events += 1
                self.clock += self.cost.block_event
            # Processor sharing: with R runnable clients and P-way
            # hardware parallelism, each unit of work advances
            # wall-clock time by 1/min(R, P). Blocked clients waste
            # parallel capacity -- the mechanism by which S2PL's
            # blocking depresses throughput in the paper's figures.
            share = max(1, min(len(runnable), self.cost.parallelism))
            self.clock += self._charge() / share
        return self.result()

    def result(self) -> SimResult:
        stats = [c.stats for c in self.clients]
        by_type: Dict[str, int] = {}
        latencies = []
        for s in stats:
            for name, count in s.by_type.items():
                by_type[name] = by_type.get(name, 0) + count
            latencies.extend(s.latencies)
        return SimResult(
            ticks=self.clock,
            commits=sum(s.commits for s in stats),
            aborts=sum(s.aborts for s in stats),
            serialization_failures=sum(s.serialization_failures
                                       for s in stats),
            deadlocks=sum(s.deadlocks for s in stats),
            retries=sum(s.retries for s in stats),
            steps=self.steps,
            by_type=by_type,
            client_stats=stats,
            latencies=latencies,
        )
