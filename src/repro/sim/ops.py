"""Statement descriptors yielded by client transaction programs.

A transaction program is a generator::

    def my_txn():
        rows = yield select("t", Eq("k", 1))
        if rows:
            yield update("t", Eq("k", 1), {"v": rows[0]["v"] + 1})
        yield commit()

The scheduler executes each Op against the client's session and sends
the result back into the generator. Programs must be restartable (the
client re-creates the generator to retry after a serialization
failure) and must end with commit() or rollback().
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Op:
    """One session call: ``session.<method>(*args, **kwargs)``."""

    method: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"{self.method}({', '.join(parts)})"


def begin(isolation=None, *, read_only: bool = False,
          deferrable: bool = False) -> Op:
    return Op("begin", (isolation,),
              {"read_only": read_only, "deferrable": deferrable})


def commit() -> Op:
    return Op("commit")


def rollback() -> Op:
    return Op("rollback")


def select(table: str, where=None) -> Op:
    return Op("select", (table, where))


def scan_rows(table: str, where=None) -> Op:
    """Zero-copy read (see Session.scan_rows): the rows alias live
    tuple payloads, so the program must consume them before its next
    yield and never mutate them."""
    return Op("scan_rows", (table, where))


def select_for_update(table: str, where=None) -> Op:
    return Op("select_for_update", (table, where))


def insert(table: str, row: Dict[str, Any]) -> Op:
    return Op("insert", (table, row))


def update(table: str, where, updates) -> Op:
    return Op("update", (table, where, updates))


def delete(table: str, where=None) -> Op:
    return Op("delete", (table, where))
