"""Simulated clients: drive transaction programs against a session."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.errors import (CapacityExceededError, DeadlockDetected,
                          RetryableError, SerializationFailure,
                          UniqueViolationError, WouldBlock)

#: A workload hands the client (transaction name, restartable factory).
TxnSpec = Tuple[str, Callable[[], Generator]]


class TxnOutcome(enum.Enum):
    COMMITTED = "committed"
    SERIALIZATION_FAILURE = "serialization_failure"
    DEADLOCK = "deadlock"
    CONSTRAINT = "constraint"


@dataclass
class ClientStats:
    commits: int = 0
    aborts: int = 0
    serialization_failures: int = 0
    deadlocks: int = 0
    constraint_failures: int = 0
    retries: int = 0
    #: commits per transaction type.
    by_type: Dict[str, int] = field(default_factory=dict)
    #: (txn name, start tick, end tick, attempts) per committed txn --
    #: the deferrable-latency measurements of section 8.4 come from
    #: here.
    latencies: list = field(default_factory=list)


class Client:
    """One simulated connection running transactions from a workload.

    The scheduler calls :meth:`step` repeatedly; each step executes one
    statement. A statement that must wait leaves the client ``blocked``
    with a wait condition the scheduler polls.
    """

    def __init__(self, client_id: int, session, next_transaction:
                 Callable[[], Optional[TxnSpec]],
                 max_retries: int = 100) -> None:
        self.client_id = client_id
        self.session = session
        session.cooperative = True  # surface mid-scan Yields to us
        self._next_transaction = next_transaction
        self.max_retries = max_retries
        self.stats = ClientStats()
        self.finished = False
        self.wait_condition = None
        self._program: Optional[Generator] = None
        self._factory: Optional[Callable[[], Generator]] = None
        self._txn_name = ""
        self._send_value: Any = None
        self._resuming = False
        self._attempts = 0
        self._txn_start_tick: float = 0.0
        self._now: float = 0.0

    @property
    def blocked(self) -> bool:
        return self.wait_condition is not None

    # ------------------------------------------------------------------
    def step(self, now: float) -> None:
        """Execute one statement (or resume a suspended one)."""
        if self.finished:
            return
        self._now = now
        if self._program is None and not self._start_next(now):
            return
        try:
            if self._resuming:
                self._resuming = False
                result = self.session.resume()
            else:
                op = self._advance()
                if op is None:
                    return
                method = getattr(self.session, op.method)
                result = method(*op.args, **op.kwargs)
            self._send_value = result
        except WouldBlock as block:
            self.wait_condition = block.condition
            self._resuming = True
            return
        except RetryableError as exc:
            self._transaction_failed(exc)
            return
        except (UniqueViolationError, CapacityExceededError) as exc:
            self._constraint_failed(exc)
            return

    def on_wakeup(self) -> None:
        """The scheduler observed our wait condition became ready."""
        self.wait_condition = None

    # ------------------------------------------------------------------
    def _start_next(self, now: float) -> bool:
        spec = self._next_transaction()
        if spec is None:
            self.finished = True
            return False
        self._txn_name, self._factory = spec
        self._program = self._factory()
        self._send_value = None
        self._attempts = 1
        self._txn_start_tick = now
        return True

    def _advance(self):
        try:
            return self._program.send(self._send_value)
        except StopIteration:
            self._transaction_done()
            return None

    def _transaction_done(self) -> None:
        if self.session.in_transaction():
            # Programs should commit explicitly; be forgiving.
            self.session.rollback()
            self.stats.aborts += 1
        else:
            self.stats.commits += 1
            self.stats.by_type[self._txn_name] = (
                self.stats.by_type.get(self._txn_name, 0) + 1)
            self.stats.latencies.append(
                (self._txn_name, self._txn_start_tick, self._now,
                 self._attempts))
        self._program = None
        self._factory = None

    def _transaction_failed(self, exc: Exception) -> None:
        self.stats.aborts += 1
        if isinstance(exc, DeadlockDetected):
            self.stats.deadlocks += 1
        else:
            self.stats.serialization_failures += 1
        if self.session.in_transaction():
            self.session.rollback()
        # Safe retry (section 5.4): immediately restart the same
        # transaction from scratch.
        if self._attempts <= self.max_retries:
            self.stats.retries += 1
            self._attempts += 1
            self._program = self._factory()
            self._send_value = None
        else:  # pragma: no cover - pathological
            self._program = None
            self._factory = None

    def _constraint_failed(self, exc: Exception) -> None:
        self.stats.aborts += 1
        self.stats.constraint_failures += 1
        if self.session.in_transaction():
            self.session.rollback()
        self._program = None  # constraint errors are not retried
        self._factory = None
