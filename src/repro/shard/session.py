"""ShardedSession: one logical connection over N shard engines.

Statements route through the partitioner -- a primary-key equality
predicate pins a statement to one shard, anything else fans out -- and
shard branches open lazily: a transaction that only ever touches one
shard never pays for the others, and its commit takes a **fast path**
that skips the 2PC coordinator entirely. What the fast path never
skips is *certification*: every commit (fast or distributed) exports
its branch rw-antidependency summaries to the
:class:`~repro.shard.certifier.GlobalCertifier` and runs the
cross-shard dangerous-structure check, because a single-shard
transaction can still be the T1 or T3 of a structure whose pivot spans
shards.

Multi-shard commits prepare every branch (each shard's local SSI
pre-commit check runs inside PREPARE), certify with the exchanged
summaries, log the decision in the coordinator's persistent log, and
then commit the prepared branches -- prepare and commit fan-out go
through :meth:`_map`, which subclasses (``repro.shard.threaded``)
override to run thread-per-shard in parallel under the existing engine
latch ranks.

Lazy branch snapshots are policed for cross-shard atomicity: opening a
late branch re-checks the certifier's recent multi-shard commit
footprints and restarts the transaction (retryable 40001) when a
commit became visible between two of its branch snapshots
(:meth:`GlobalCertifier.check_branch_coherence`).

SERIALIZABLE READ ONLY DEFERRABLE routes reads to per-shard
safe-snapshot replicas (section 4.3 / 7.2): such a transaction opens
no branches at all and can never abort or be aborted.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.engine.coordinator import Decision
from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Predicate
from repro.errors import (FeatureNotSupportedError,
                          InvalidTransactionStateError,
                          ReadOnlyTransactionError, ReproError,
                          RetryableError, WouldBlock)
from repro.engine.transaction import TxnStatus


def _merge_concat(parts: List[Any]) -> List[Any]:
    out: List[Any] = []
    for part in parts:
        out.extend(part)
    return out


def _merge_sum(parts: List[int]) -> int:
    return sum(parts)


def _merge_single(parts: List[Any]) -> Any:
    return parts[0]


class ShardedSession:
    """One client connection to a :class:`ShardedDatabase`."""

    def __init__(self, sdb, session_id: int,
                 default_isolation: IsolationLevel) -> None:
        self.sdb = sdb
        self.session_id = session_id
        self.default_isolation = default_isolation
        self.gid: Optional[str] = None
        self.isolation: Optional[IsolationLevel] = None
        self.read_only = False
        self._replica_mode = False
        #: shard index -> branch Session (lazily opened).
        self._branches: Dict[int, Any] = {}
        #: shard index -> certifier epoch observed before that branch's
        #: snapshot (snapshot-coherence bookkeeping).
        self._branch_epochs: Dict[int, int] = {}
        self._failed = False
        self._pending: Optional[Iterator] = None
        self._pending_autocommit = False

    # ------------------------------------------------------------------
    # transaction control
    # ------------------------------------------------------------------
    def begin(self, isolation: Optional[IsolationLevel] = None, *,
              read_only: bool = False, deferrable: bool = False) -> str:
        if self.gid is not None:
            raise InvalidTransactionStateError(
                "a transaction is already in progress")
        if self._pending is not None:
            raise InvalidTransactionStateError("a statement is suspended")
        iso = isolation or self.default_isolation
        if deferrable:
            if not (read_only and iso.uses_ssi):
                raise FeatureNotSupportedError(
                    "DEFERRABLE requires SERIALIZABLE READ ONLY")
            if self.sdb.replicas is None:
                raise FeatureNotSupportedError(
                    "DEFERRABLE routing needs attach_replicas()")
        self.isolation = iso
        self.read_only = read_only
        self._replica_mode = deferrable
        self._failed = False
        self.gid = self.sdb.next_gid()
        if not self._replica_mode:
            self.sdb.certifier.begin(self.gid)
        return self.gid

    def commit(self) -> bool:
        """COMMIT. Mirrors :meth:`Session.commit`: committing a FAILED
        transaction rolls back and returns False; a certification or
        branch pre-commit failure raises (retryable 40001)."""
        gid = self._require_txn(allow_failed=True)
        self._pending = None
        if self._replica_mode:
            self._reset()
            return True
        if self._failed:
            self._abort_all(gid)
            return False
        branches = {s: sess for s, sess in self._branches.items()
                    if sess.in_transaction()}
        try:
            if len(branches) <= 1:
                self._commit_fast(gid, branches)
            else:
                self._commit_2pc(gid, branches)
        except ReproError:
            self.sdb.certifier.abort(gid)
            self._rollback_live_branches()
            self._reset()
            raise
        self.sdb.certifier.finish_commit(gid)
        self._reset()
        return True

    def rollback(self) -> None:
        gid = self._require_txn(allow_failed=True)
        self._pending = None
        if self._replica_mode:
            self._reset()
            return
        self._abort_all(gid)

    def in_transaction(self) -> bool:
        return self.gid is not None

    @property
    def blocked(self) -> bool:
        return self._pending is not None

    def run_transaction(self, fn, isolation: Optional[IsolationLevel] = None,
                        *, max_retries: int = 50, read_only: bool = False,
                        deferrable: bool = False):
        """Execute ``fn(session)`` with serialization-failure retry --
        the middleware loop the paper assumes (section 3.3), now also
        absorbing cross-shard certification aborts and snapshot-
        coherence restarts."""
        attempts = 0
        while True:
            attempts += 1
            try:
                self.begin(isolation, read_only=read_only,
                           deferrable=deferrable)
                result = fn(self)
                self.commit()
                return result
            except RetryableError:
                if self.gid is not None:
                    self.rollback()
                if attempts > max_retries:
                    raise

    # -- unsupported compound control ------------------------------------
    def savepoint(self, name: str) -> None:
        raise FeatureNotSupportedError(
            "savepoints are not supported on sharded sessions")

    rollback_to_savepoint = savepoint
    release_savepoint = savepoint

    # ------------------------------------------------------------------
    # DML statements
    # ------------------------------------------------------------------
    def select(self, table: str, where: Optional[Predicate] = None):
        if self._replica_mode:
            return self._replica_select(table, where)
        shards = self._route(table, where)
        return self._statement(shards,
                               lambda sess: sess.select(table, where),
                               _merge_concat)

    def scan_rows(self, table: str, where: Optional[Predicate] = None):
        if self._replica_mode:
            return self._replica_select(table, where)
        shards = self._route(table, where)
        return self._statement(shards,
                               lambda sess: sess.scan_rows(table, where),
                               _merge_concat)

    def select_for_update(self, table: str,
                          where: Optional[Predicate] = None):
        self._forbid_replica_write()
        shards = self._route(table, where)
        return self._statement(
            shards, lambda sess: sess.select_for_update(table, where),
            _merge_concat)

    def insert(self, table: str, row: Dict[str, Any]):
        self._forbid_replica_write()
        shard = self.sdb.partitioner.shard_for_row(table, row)
        return self._statement([shard],
                               lambda sess: sess.insert(table, row),
                               _merge_single)

    def update(self, table: str, where: Optional[Predicate], updates):
        self._forbid_replica_write()
        shards = self._route(table, where)
        return self._statement(
            shards, lambda sess: sess.update(table, where, updates),
            _merge_sum)

    def delete(self, table: str, where: Optional[Predicate] = None):
        self._forbid_replica_write()
        shards = self._route(table, where)
        return self._statement(
            shards, lambda sess: sess.delete(table, where), _merge_sum)

    def scan_aggregate(self, table: str, specs,
                       where: Optional[Predicate] = None):
        if self._replica_mode:
            raise FeatureNotSupportedError(
                "aggregate pushdown is not routed to replicas")
        specs = [tuple(s) for s in specs]
        shards = self._route(table, where)
        if len(shards) == 1:
            return self._statement(
                shards, lambda sess: sess.scan_aggregate(table, specs,
                                                         where),
                _merge_single)
        # AVG cannot be merged from per-shard AVGs: fan out SUM+COUNT
        # and recombine (NULL semantics preserved: empty input -> None).
        expanded: List[Tuple[str, Optional[str]]] = []
        slots: List[Tuple[str, int, int]] = []
        for func, col in specs:
            if func == "AVG":
                slots.append((func, len(expanded), len(expanded) + 1))
                expanded.append(("SUM", col))
                expanded.append(("COUNT", col))
            else:
                slots.append((func, len(expanded), -1))
                expanded.append((func, col))
        return self._statement(
            shards,
            lambda sess: sess.scan_aggregate(table, expanded, where),
            lambda parts: self._merge_aggregates(slots, parts))

    @staticmethod
    def _merge_aggregates(slots, parts: List[List[Any]]) -> List[Any]:
        merged: List[Any] = []
        for func, i, j in slots:
            col = [part[i] for part in parts]
            if func == "COUNT":
                merged.append(sum(v for v in col if v is not None))
            elif func == "SUM":
                vals = [v for v in col if v is not None]
                merged.append(sum(vals) if vals else None)
            elif func in ("MIN", "MAX"):
                vals = [v for v in col if v is not None]
                merged.append((min(vals) if func == "MIN" else max(vals))
                              if vals else None)
            elif func == "AVG":
                total = sum(v for v in col if v is not None)
                count = sum(v for part in parts
                            if (v := part[j]) is not None)
                merged.append(total / count if count else None)
            else:
                raise FeatureNotSupportedError(
                    f"cannot merge {func} across shards")
        return merged

    # ------------------------------------------------------------------
    # routing / branches
    # ------------------------------------------------------------------
    def _route(self, table: str, where: Optional[Predicate]) -> List[int]:
        return self.sdb.partitioner.shards_for_predicate(table, where)

    def _branch(self, shard: int):
        sess = self._branches.get(shard)
        if sess is not None:
            return sess
        assert self.gid is not None
        if (self.isolation.uses_ssi and self._branch_epochs):
            # A late branch: restart if a multi-shard commit became
            # visible between this snapshot and an earlier branch's.
            self.sdb.certifier.check_branch_coherence(
                self.gid, self._branch_epochs, shard)
        # Read the epoch *before* the snapshot: a commit registering
        # in between is conservatively treated as post-snapshot.
        epoch = self.sdb.certifier.epoch
        sess = self._open_branch(shard)
        self._run_on(shard, sess.begin, self.isolation,
                     read_only=self.read_only)
        self.sdb.certifier.note_branch(self.gid, shard, sess.txn.xid)
        self._branch_epochs[shard] = epoch
        self._branches[shard] = sess
        return sess

    def _open_branch(self, shard: int):
        """Subclass hook: how a branch session is created."""
        return self.sdb.shards[shard].session()

    def _run_on(self, shard: int, fn: Callable, *args, **kw):
        """Subclass hook: run one engine call against ``shard`` (the
        threaded router routes this through the shard's engine latch)."""
        return fn(*args, **kw)

    def _map(self, calls: List[Tuple[int, Callable]]
             ) -> List[Tuple[int, Any, Optional[BaseException]]]:
        """Subclass hook: run independent per-shard thunks, returning
        (shard, result, exception) triples in input order. The base
        implementation is sequential; the threaded router fans out."""
        out = []
        for shard, fn in calls:
            try:
                out.append((shard, fn(), None))
            except BaseException as exc:  # noqa: BLE001 - collected
                out.append((shard, None, exc))
        return out

    # ------------------------------------------------------------------
    # statement machinery (WouldBlock-resumable fan-out)
    # ------------------------------------------------------------------
    def _statement(self, shards: List[int], fn: Callable,
                   merge: Callable[[List[Any]], Any]):
        if self._pending is not None:
            raise InvalidTransactionStateError(
                "a statement is suspended; resume() it first")
        if self._failed:
            raise InvalidTransactionStateError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block")
        autocommit = self.gid is None
        if autocommit:
            self.begin(self.default_isolation)
        gen = self._fanout(sorted(set(shards)), fn, merge)
        return self._drive(gen, autocommit)

    def _fanout(self, shards: List[int], fn: Callable,
                merge: Callable) -> Iterator:
        results = []
        for shard in shards:
            sess = self._branch(shard)
            try:
                result = self._run_on(shard, fn, sess)
            except WouldBlock as wb:
                result = yield from self._await_branch(shard, sess, wb)
            results.append(result)
        return merge(results)

    def _await_branch(self, shard: int, sess, wb: WouldBlock) -> Iterator:
        while True:
            yield wb.condition
            try:
                return self._run_on(shard, sess.resume)
            except WouldBlock as again:
                wb = again

    def _drive(self, gen: Iterator, autocommit: bool):
        try:
            condition = next(gen)
        except StopIteration as stop:
            return self._finish_statement(stop.value, autocommit)
        except ReproError as exc:
            self._statement_failed(autocommit, exc)
            raise
        self._pending = gen
        self._pending_autocommit = autocommit
        raise WouldBlock(condition, session=self)

    def resume(self):
        if self._pending is None:
            raise InvalidTransactionStateError("no suspended statement")
        gen = self._pending
        try:
            condition = next(gen)
        except StopIteration as stop:
            autocommit = self._pending_autocommit
            self._pending = None
            return self._finish_statement(stop.value, autocommit)
        except ReproError as exc:
            autocommit = self._pending_autocommit
            self._pending = None
            self._statement_failed(autocommit, exc)
            raise
        raise WouldBlock(condition, session=self)

    def _finish_statement(self, value, autocommit: bool):
        self._pending = None
        if autocommit:
            self.commit()
        return value

    def _statement_failed(self, autocommit: bool, exc: Exception) -> None:
        if self.gid is None:
            return
        self._failed = True
        if autocommit:
            self.rollback()

    # ------------------------------------------------------------------
    # commit paths
    # ------------------------------------------------------------------
    def _commit_fast(self, gid: str, branches: Dict[int, Any]) -> None:
        """Single-shard (or empty) commit: certify, then one local
        commit -- no coordinator, no prepare."""
        certifier = self.sdb.certifier
        certifier.ensure_not_doomed(gid)
        if not branches:
            certifier.certify(gid, [])
            return
        (shard, sess), = branches.items()
        certifier.certify(gid, [(shard, sess.txn.sxact)])
        # A local pre-commit failure here propagates to commit()'s
        # handler, which rolls the certifier's COMMITTING state back.
        self._run_on(shard, sess.commit)

    def _commit_2pc(self, gid: str, branches: Dict[int, Any]) -> None:
        """Multi-shard commit: prepare all branches (local SSI checks
        run inside PREPARE), certify with the exchanged summaries, log
        the decision durably, then commit the prepared branches.

        With at most one *writer* branch the one-phase optimization
        applies instead: the writer's own WAL commit record is the
        atomic commit point, so no coordinator decision and no prepare
        flush are needed."""
        sdb = self.sdb
        certifier = sdb.certifier
        certifier.ensure_not_doomed(gid)
        txns = {s: sess.txn for s, sess in branches.items()}
        sxacts = [(s, txn.sxact) for s, txn in sorted(txns.items())]
        branch_shards = sorted(txns)
        writers = [s for s in branch_shards if txns[s].wal_changes]
        if len(writers) <= 1:
            self._commit_one_phase(gid, branches, writers, sxacts,
                                   branch_shards)
            return
        # Phase 1: prepare, fanned out per shard.
        results = self._map([
            (s, (lambda s=s, sess=sess:
                 self._run_on(s, sess.prepare_transaction,
                              self._branch_gid(gid, s))))
            for s, sess in sorted(branches.items())])
        prepared = [s for s, _r, exc in results if exc is None]
        first_exc = next((exc for _s, _r, exc in results
                          if exc is not None), None)
        if first_exc is None:
            try:
                certifier.certify(gid, sxacts)
            except ReproError as exc:
                first_exc = exc
        if first_exc is not None:
            for s in prepared:
                self._run_on(s, sdb.shards[s].rollback_prepared,
                             self._branch_gid(gid, s))
            sdb.coordinator.log.append((gid, Decision.ABORTED))
            raise first_exc
        # Registered before any branch commit applies, so a racing late
        # branch begin sees the footprint. Every branch shard counts,
        # not just writer shards: committing fixes an ordering fact on
        # read-only branches too (a later writer there is judged
        # non-concurrent with us, silently dropping the local rw edge),
        # so a transaction snapshotting shard A before our commit and
        # shard B after it has a fractured view either way.
        certifier.register_multi_commit(branch_shards)
        # The decision record is the commit point (persisted when the
        # coordinator has a log path): prepared branches now commit
        # even across a coordinator restart.
        sdb.coordinator.log.append((gid, Decision.COMMITTED))
        commit_results = self._map([
            (s, (lambda s=s: self._run_on(
                s, sdb.shards[s].commit_prepared, self._branch_gid(gid, s))))
            for s in prepared])
        for _s, _r, exc in commit_results:
            if exc is not None:  # pragma: no cover - prepared commits
                raise exc        # cannot fail the SSI check

    def _commit_one_phase(self, gid: str, branches: Dict[int, Any],
                          writers: List[int], sxacts, branch_shards) -> None:
        """Commit a multi-shard transaction with <= 1 writer branch.

        Reader branches are still PREPAREd first -- prepare runs each
        shard's local SSI pre-commit check and pins the branch, so
        nothing can fail after the writer commits -- but a no-write
        prepare is memory-only (no WAL flush). Then certify, then
        commit the writer normally: its local commit record is the
        atomic commit point (readers have no effects to make atomic;
        if we crash before their commit-prepared they resolve to
        no-ops). The coordinator decision log is not involved."""
        sdb = self.sdb
        certifier = sdb.certifier
        writer = writers[0] if writers else None
        readers = [s for s in branch_shards if s != writer]
        results = self._map([
            (s, (lambda s=s, sess=branches[s]:
                 self._run_on(s, sess.prepare_transaction,
                              self._branch_gid(gid, s))))
            for s in readers])
        prepared = [s for s, _r, exc in results if exc is None]
        first_exc = next((exc for _s, _r, exc in results
                          if exc is not None), None)
        if first_exc is None:
            try:
                certifier.certify(gid, sxacts)
            except ReproError as exc:
                first_exc = exc
        if first_exc is None:
            # Commit fixes ordering facts on every branch shard (see
            # _commit_2pc); register before any of them applies.
            certifier.register_multi_commit(branch_shards)
            if writer is not None:
                try:
                    # Runs the writer's local SSI pre-commit check too.
                    self._run_on(writer, branches[writer].commit)
                except ReproError as exc:
                    first_exc = exc
        if first_exc is not None:
            for s in prepared:
                self._run_on(s, sdb.shards[s].rollback_prepared,
                             self._branch_gid(gid, s))
            raise first_exc
        commit_results = self._map([
            (s, (lambda s=s: self._run_on(
                s, sdb.shards[s].commit_prepared, self._branch_gid(gid, s))))
            for s in prepared])
        for _s, _r, exc in commit_results:
            if exc is not None:  # pragma: no cover - prepared commits
                raise exc        # cannot fail the SSI check

    def _branch_gid(self, gid: str, shard: int) -> str:
        return f"{gid}:{self.sdb.shard_name(shard)}"

    # ------------------------------------------------------------------
    # abort / cleanup
    # ------------------------------------------------------------------
    def _abort_all(self, gid: str) -> bool:
        self._rollback_live_branches()
        self.sdb.certifier.abort(gid)
        self._reset()
        return False

    def _rollback_live_branches(self) -> None:
        for shard, sess in self._branches.items():
            if sess.in_transaction():
                txn = sess.txn
                if txn.status in (TxnStatus.ACTIVE, TxnStatus.FAILED):
                    self._run_on(shard, sess.rollback)
                else:
                    sess.txn = None  # already aborted/committed: detach

    def _reset(self) -> None:
        self.gid = None
        self.isolation = None
        self.read_only = False
        self._replica_mode = False
        self._branches = {}
        self._branch_epochs = {}
        self._failed = False
        self._pending = None

    def _require_txn(self, allow_failed: bool = False) -> str:
        if self.gid is None:
            raise InvalidTransactionStateError("no transaction in progress")
        if self._failed and not allow_failed:
            raise InvalidTransactionStateError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block")
        return self.gid

    def _forbid_replica_write(self) -> None:
        if self._replica_mode:
            raise ReadOnlyTransactionError(
                "cannot execute writes in a READ ONLY DEFERRABLE "
                "transaction")

    # ------------------------------------------------------------------
    # DEFERRABLE: safe-snapshot replica routing (sections 4.3 / 7.2)
    # ------------------------------------------------------------------
    def _replica_select(self, table: str, where: Optional[Predicate]):
        from repro.replication.replica import ReplicaReadMode
        shards = self._route(table, where)
        rows: List[Dict[str, Any]] = []
        for shard in sorted(set(shards)):
            replica = self.sdb.replicas[shard]
            rows.extend(self._run_on(
                shard, replica.query, table, where,
                mode=ReplicaReadMode.WAIT_SAFE))
        return rows
