"""repro.shard: hash-partitioned scale-out with distributed SSI.

An N-shard database built from the existing single-node pieces: each
shard is a full :class:`repro.engine.Database`, tables hash-partition
by primary key, cross-shard transactions two-phase-commit through
:class:`repro.engine.coordinator.Coordinator`, and every commit is
certified against cross-shard dangerous structures by the
:class:`~repro.shard.certifier.GlobalCertifier` (per-branch
rw-antidependency summaries exchanged at PREPARE time, keyed by global
transaction id). See DESIGN.md, "Sharding".
"""

from repro.shard.certifier import GlobalCertifier
from repro.shard.database import ShardedDatabase
from repro.shard.partition import Partitioner, shard_for
from repro.shard.session import ShardedSession

__all__ = ["GlobalCertifier", "Partitioner", "ShardedDatabase",
           "ShardedSession", "shard_for"]
