"""Thread-per-shard parallel fan-out for the shard router.

The deterministic :class:`~repro.shard.session.ShardedSession` runs
its fan-out sequentially (and surfaces waits as WouldBlock for the
scheduler). Real deployments want the opposite: each shard is an
independent engine with its own :class:`ThreadSafeEngine` latch, so a
multi-shard statement can run its branches genuinely concurrently --
one worker thread per shard, every branch call entering the engine
under that shard's latch with the wait hook installed (the same
discipline the TCP server uses; ``repro.analysis concurrency`` proves
the rank order holds).

This is what the DBT-2++ shard benchmark drives: N client threads x
M shards, single-shard transactions never leaving their one latch,
multi-shard commits preparing and committing branches in parallel.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.engine.isolation import IsolationLevel
from repro.server.engine import ThreadSafeEngine
from repro.shard.database import ShardedDatabase
from repro.shard.session import ShardedSession


class _Future:
    __slots__ = ("_done", "result", "exc")

    def __init__(self) -> None:
        self._done = threading.Event()
        self.result: Any = None
        self.exc: Optional[BaseException] = None

    def wait(self) -> "_Future":
        self._done.wait()
        return self


class ShardWorkers:
    """One dispatch thread per shard, fed by a per-shard queue."""

    def __init__(self, n_shards: int) -> None:
        self._queues: List[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(n_shards)]
        self._threads = [
            threading.Thread(target=self._loop, args=(q,), daemon=True,
                             name=f"shard-worker-{i}")
            for i, q in enumerate(self._queues)]
        for t in self._threads:
            t.start()

    def _loop(self, q: queue.SimpleQueue) -> None:
        while True:
            item = q.get()
            if item is None:
                return
            fn, fut = item
            try:
                fut.result = fn()
            except BaseException as exc:  # noqa: BLE001 - ferried to caller
                fut.exc = exc
            fut._done.set()

    def submit(self, shard: int, fn: Callable[[], Any]) -> _Future:
        fut = _Future()
        self._queues[shard].put((fn, fut))
        return fut

    def close(self) -> None:
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            t.join(timeout=5)


class ThreadedShardedDatabase:
    """A :class:`ShardedDatabase` fronted by per-shard engine latches
    and a thread-per-shard fan-out pool."""

    def __init__(self, sdb: ShardedDatabase,
                 statement_timeout: Optional[float] = None) -> None:
        self.sdb = sdb
        self.engines = [ThreadSafeEngine(db, statement_timeout)
                        for db in sdb.shards]
        self.workers = ShardWorkers(sdb.n_shards)

    def session(self, default_isolation: IsolationLevel =
                IsolationLevel.READ_COMMITTED) -> "ThreadedShardedSession":
        return ThreadedShardedSession(self, default_isolation)

    def close(self) -> None:
        self.workers.close()
        for engine in self.engines:
            engine.shutdown()


class ThreadedShardedSession(ShardedSession):
    """A sharded session whose branch calls run under per-shard engine
    latches, with multi-shard fan-out dispatched to the shard workers.

    Branch sessions carry the server wait hook, so lock waits park the
    worker thread on the shard's latch condition variable and
    WouldBlock never surfaces -- the generator continuation machinery
    of the base class is bypassed entirely.
    """

    def __init__(self, tdb: ThreadedShardedDatabase,
                 default_isolation: IsolationLevel) -> None:
        super().__init__(tdb.sdb, tdb.sdb.alloc_session_id(),
                         default_isolation)
        self.tdb = tdb

    def _open_branch(self, shard: int):
        es = self.tdb.engines[shard].open_session(
            self.isolation or self.default_isolation)
        return es.session

    def _run_on(self, shard: int, fn: Callable, *args, **kw):
        return self.tdb.engines[shard].run(fn, *args, **kw)

    def _map(self, calls: List[Tuple[int, Callable]]
             ) -> List[Tuple[int, Any, Optional[BaseException]]]:
        if len(calls) == 1:
            return super()._map(calls)
        futures = [(shard, self.tdb.workers.submit(shard, fn))
                   for shard, fn in calls]
        return [(shard, fut.result, fut.exc)
                for shard, fut in ((s, f.wait()) for s, f in futures)]

    def _fanout(self, shards: List[int], fn: Callable, merge: Callable):
        # Branches open sequentially (the snapshot-coherence check is
        # order-sensitive); the statement bodies then fan out to the
        # per-shard workers and run concurrently. Still a generator so
        # errors surface inside _drive's handler, like the base class.
        for shard in shards:
            self._branch(shard)
        if len(shards) == 1:
            shard = shards[0]
            return merge([self._run_on(shard, fn, self._branches[shard])])
        results = self._map([
            (s, (lambda s=s: self._run_on(s, fn, self._branches[s])))
            for s in shards])
        first_exc = next((exc for _s, _r, exc in results
                          if exc is not None), None)
        if first_exc is not None:
            raise first_exc
        return merge([r for _s, r, _exc in results])
        yield  # pragma: no cover - generator protocol only