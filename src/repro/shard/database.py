"""ShardedDatabase: N engines behind one router.

Composes the pieces the single-node reproduction already has -- the
engine (`repro.engine.Database`), the external 2PC coordinator
(section 7.1's footnote), and WAL-shipping replicas with section 7.2
safe-snapshot markers -- into one logical database:

* tables are hash-partitioned by primary key (:mod:`repro.shard.partition`);
* transactions run through :class:`repro.shard.session.ShardedSession`,
  which opens shard branches lazily, fast-paths single-shard commits,
  and two-phase-commits multi-shard ones;
* every commit is certified by the :class:`GlobalCertifier`, which
  merges per-branch rw-antidependency summaries keyed by global
  transaction id -- cross-shard dangerous structures doom their pivot
  exactly as the single-node check does (each shard's local SSI still
  catches structures whose edges all live on that shard);
* SERIALIZABLE READ ONLY DEFERRABLE queries route to per-shard
  safe-snapshot replicas fed by each shard's WAL stream.

Verification merges the per-shard Adya graphs: every data item lives
on exactly one shard, so each rw/ww/wr edge is fully visible to the
shard owning the item; relabeling per-shard transaction ids to global
ids and uniting the edge sets yields the global serialization graph.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

import networkx as nx

from repro.config import EngineConfig
from repro.engine.coordinator import Coordinator
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.shard.certifier import GlobalCertifier, OLD_COMMITTED_GID
from repro.shard.partition import Partitioner


class ShardedCheckResult:
    """Outcome of the merged cross-shard serializability check."""

    __slots__ = ("serializable", "cycle", "committed_gids", "edge_count")

    def __init__(self, serializable: bool, cycle, committed_gids, edge_count):
        self.serializable = serializable
        self.cycle = cycle
        self.committed_gids = committed_gids
        self.edge_count = edge_count

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.serializable


class ShardedDatabase:
    """One logical database hash-partitioned over ``n_shards`` engines."""

    def __init__(self, n_shards: int,
                 configs: Optional[Sequence[EngineConfig]] = None,
                 *, coordinator_log: Optional[str] = None) -> None:
        if configs is not None and len(configs) != n_shards:
            raise ValueError("need one EngineConfig per shard")
        self.n_shards = n_shards
        self.shards: List[Database] = [
            Database(configs[i] if configs is not None else None)
            for i in range(n_shards)]
        self.partitioner = Partitioner(n_shards)
        self.certifier = GlobalCertifier()
        self.coordinator = Coordinator(
            {self.shard_name(i): db for i, db in enumerate(self.shards)},
            log_path=coordinator_log)
        #: Per-shard safe-snapshot replicas (lazy; attach_replicas()).
        self.replicas: Optional[List] = None
        # itertools.count: atomic under concurrent client threads.
        self._gids = itertools.count(1)
        self._session_ids = itertools.count(1)

    @staticmethod
    def shard_name(shard: int) -> str:
        return f"s{shard}"

    # ------------------------------------------------------------------
    # DDL fans out to every shard
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str],
                     key: Optional[str] = None, *, shard_key=None):
        """Create ``name`` on every shard, partitioned by ``key``
        (tables without a key live wholly on shard 0 but still exist
        everywhere so fan-out statements are uniform). ``shard_key``
        optionally maps the key to the value that is hashed -- the
        distribute-by-column affinity (see repro.shard.partition)."""
        rels = [db.create_table(name, columns, key=key)
                for db in self.shards]
        self.partitioner.add_table(name, key, shard_key=shard_key)
        return rels

    def create_index(self, table: str, column: str, **kw):
        return [db.create_index(table, column, **kw) for db in self.shards]

    def analyze(self, table: Optional[str] = None):
        return [db.analyze(table) for db in self.shards]

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(self, default_isolation: IsolationLevel =
                IsolationLevel.READ_COMMITTED):
        from repro.shard.session import ShardedSession
        return ShardedSession(self, self.alloc_session_id(),
                              default_isolation)

    def alloc_session_id(self) -> int:
        return next(self._session_ids)

    def next_gid(self) -> str:
        return f"g{next(self._gids)}"

    # ------------------------------------------------------------------
    # loading convenience (setup time, like create_table)
    # ------------------------------------------------------------------
    def load_rows(self, table: str, rows: Sequence[Dict[str, Any]]) -> None:
        """Bulk-load seed rows, one autocommit insert per row routed to
        the owning shard."""
        sessions = [db.session() for db in self.shards]
        for row in rows:
            shard = self.partitioner.shard_for_row(table, row)
            sessions[shard].insert(table, dict(row))

    # ------------------------------------------------------------------
    # replicas (section 7.2 / DEFERRABLE routing)
    # ------------------------------------------------------------------
    def attach_replicas(self) -> None:
        from repro.replication.replica import Replica
        if self.replicas is None:
            self.replicas = [Replica(db, name=f"standby-s{i}")
                             for i, db in enumerate(self.shards)]

    def refresh_replicas(self) -> None:
        if self.replicas is None:
            raise RuntimeError("attach_replicas() first")
        for replica in self.replicas:
            replica.catch_up()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover_in_doubt(self) -> Dict[str, str]:
        """Resolve prepared-but-undecided branches from the (persisted)
        coordinator decision log -- the restart path of satellite 2PC
        recovery. Returns branch gid -> action."""
        return self.coordinator.recover()

    def close(self) -> None:
        for db in self.shards:
            db.close()

    # ------------------------------------------------------------------
    # verification: the merged Adya graph
    # ------------------------------------------------------------------
    def check_serializable(self) -> ShardedCheckResult:
        """Cross-shard serializability oracle.

        Builds each shard's Adya graph from its own history recorder
        (phantom detection needs the shard-local snapshot xip sets, so
        recorders are *not* merged), relabels committed branch xids to
        global transaction ids, and unions the edges. A transaction
        counts as globally committed only when every branch the
        recorder saw commit belongs to a gid the certifier finished
        committing -- 2PC guarantees branches agree, so this is just
        the translation step.
        """
        from repro.verify.graph import build_graph
        merged = nx.DiGraph()
        committed_gids = set()
        edge_count = 0
        for shard, db in enumerate(self.shards):
            if db.recorder is None:
                raise RuntimeError(
                    "shard engines were built without record_history")
            graph = build_graph(db.recorder).graph
            for xid in graph.nodes:
                gid = self._gid_for(shard, xid)
                committed_gids.add(gid)
                merged.add_node(gid)
            for u, v, kinds in graph.edges(data="kinds"):
                gu, gv = self._gid_for(shard, u), self._gid_for(shard, v)
                if gu == gv:
                    continue
                edge_count += len(kinds)
                if merged.has_edge(gu, gv):
                    merged[gu][gv]["kinds"].update(kinds)
                else:
                    merged.add_edge(gu, gv, kinds=set(kinds))
        try:
            cycle = nx.find_cycle(merged)
        except nx.NetworkXNoCycle:
            cycle = None
        return ShardedCheckResult(cycle is None, cycle, committed_gids,
                                  edge_count)

    def _gid_for(self, shard: int, xid: int) -> str:
        gid = self.certifier._gid_by_branch.get((shard, xid))
        if gid is None:
            # A branch the certifier never saw: a transaction run
            # directly against the shard engine (e.g. bulk loading).
            # Give it a stable synthetic gid so it still participates
            # in the merged graph.
            return f"local:s{shard}:x{xid}"
        return gid
