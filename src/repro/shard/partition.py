"""Hash partitioning: which shard owns a row.

Tables are partitioned by their primary key through a deterministic
hash (crc32 over the key's repr), so the same key always lands on the
same shard across runs, processes, and Python hash randomization --
routing is part of the logical history, and a salted ``hash()`` here
would make schedules unreplayable. Tables declared without a key are
pinned whole to shard 0 (small control/catalog tables).

A table may additionally declare a **shard-key extractor**: a pure
function of the primary key whose result is hashed instead of the key
itself. This is the "distribute by column" affinity every production
sharded system offers -- e.g. DBT-2++ flattens its composite TPC-C
keys into integers that embed the warehouse id, and extracting the
warehouse co-locates a warehouse's district, customer, stock and order
rows on one shard, which is what makes most TPC-C transactions
single-shard. The extractor must be deterministic; it participates in
routing exactly like the key.

Routing inspects statement predicates through the same sargable-range
extraction the planner uses (:func:`repro.engine.predicate.candidate_ranges`):
an equality restriction on the partition key routes to exactly one
shard; anything else fans out to every shard that can hold matching
rows.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, List, Optional

from repro.engine.predicate import Predicate, candidate_ranges


def shard_for(key: Any, n_shards: int) -> int:
    """The shard owning partition-key value ``key``.

    crc32 over the canonical repr: stable across processes (unlike
    ``hash()``), uniform enough for integer and string keys alike.
    """
    if n_shards == 1:
        return 0
    return zlib.crc32(repr(key).encode("utf-8")) % n_shards


class Partitioner:
    """Partition-key bookkeeping for one sharded deployment."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        #: table name -> partition key column (None = pinned to shard 0).
        self._keys: dict = {}
        #: table name -> shard-key extractor (None = hash the key).
        self._extractors: dict = {}

    def add_table(self, name: str, key: Optional[str], *,
                  shard_key: Optional[Callable[[Any], Any]] = None) -> None:
        self._keys[name] = key
        self._extractors[name] = shard_key

    def key_column(self, table: str) -> Optional[str]:
        return self._keys[table]

    def _shard_of(self, table: str, value: Any) -> int:
        extract = self._extractors.get(table)
        if extract is not None:
            value = extract(value)
        return shard_for(value, self.n_shards)

    def shard_for_row(self, table: str, row: dict) -> int:
        """Where an INSERT of ``row`` goes."""
        key = self._keys[table]
        if key is None:
            return 0
        try:
            value = row[key]
        except KeyError:
            raise ValueError(
                f"insert into {table!r} is missing its partition key "
                f"{key!r}") from None
        return self._shard_of(table, value)

    def shards_for_predicate(self, table: str,
                             pred: Optional[Predicate]) -> List[int]:
        """The shards a statement with this predicate must touch.

        A key-equality restriction pins the statement to one shard;
        everything else (no predicate, ranges, non-key columns) fans
        out to all shards. Keyless tables live wholly on shard 0.
        """
        key = self._keys[table]
        if key is None:
            return [0]
        if pred is not None:
            for rng in candidate_ranges(pred):
                if rng.column == key and rng.is_equality:
                    return [self._shard_of(table, rng.lo)]
        return list(range(self.n_shards))
