"""Sharded differential exploration: pinned schedules over N shards.

Extends the cross-isolation sweep oracle of :mod:`repro.explore` to
sharded deployments. A *schedule* here is a sequence of client ids;
at each step the named client performs its next action (implicit
BEGIN, one statement, or COMMIT) on its :class:`ShardedSession`. The
same pinned schedule replayed against a 1-shard and a 2-shard
deployment must produce identical commit verdicts and identical final
rows -- sharding is supposed to change *where* data lives, never what
histories are admitted -- and under SERIALIZABLE every run's merged
Adya graph must be acyclic (zero non-serializable commits, the
tentpole acceptance bar).

Schedules are generated deterministically (no randomness -- they are
part of the logical history): the serial order for every client
permutation, a round-robin rotation per starting client, the
"overlap" schedule that interleaves every transaction's statements
before any commit (the classic anomaly shape), and a lexicographic
enumeration of full interleavings up to a cap.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import EngineConfig
from repro.engine.isolation import IsolationLevel
from repro.errors import ReproError, RetryableError, WouldBlock
from repro.explore.program import Program, txn_name
from repro.shard.database import ShardedDatabase


# ---------------------------------------------------------------------------
# building a sharded deployment from a Program
# ---------------------------------------------------------------------------
def build_sharded_db(program: Program, n_shards: int,
                     *, record_history: bool = True) -> ShardedDatabase:
    configs = [EngineConfig(record_history=record_history)
               for _ in range(n_shards)]
    sdb = ShardedDatabase(n_shards, configs)
    for spec in program.tables:
        sdb.create_table(spec.name, spec.columns, key=spec.key)
        for column in spec.indexes:
            sdb.create_index(spec.name, column)
        if spec.rows:
            sdb.load_rows(spec.name, spec.rows)
    return sdb


# ---------------------------------------------------------------------------
# the pinned-schedule driver
# ---------------------------------------------------------------------------
class _Client:
    """One client's cursor through its transaction list."""

    def __init__(self, cid: int, txns) -> None:
        self.cid = cid
        self.txns = txns
        self.txn_idx = 0
        self.stmt_idx = -1          # -1: BEGIN pending
        self.results: List[Any] = []
        self.session = None
        self.awaiting_stmt = False  # a statement is suspended

    @property
    def done(self) -> bool:
        return self.txn_idx >= len(self.txns)

    @property
    def txn(self):
        return self.txns[self.txn_idx]


class ShardedRun:
    """Outcome of one schedule on one deployment."""

    def __init__(self, verdicts: Dict[str, str],
                 rows: Dict[str, list], check) -> None:
        #: txn name -> "committed" | "aborted".
        self.verdicts = verdicts
        #: table -> final rows, canonically sorted.
        self.rows = rows
        #: merged-graph ShardedCheckResult (None without history).
        self.check = check

    def summary(self) -> Dict[str, Any]:
        return {"verdicts": dict(sorted(self.verdicts.items())),
                "serializable": (None if self.check is None
                                 else self.check.serializable)}


def run_schedule(program: Program, n_shards: int,
                 schedule: Sequence[int],
                 isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
                 *, record_history: bool = True,
                 max_extra_rounds: int = 1000) -> ShardedRun:
    """Replay one pinned schedule on a fresh ``n_shards`` deployment.

    After the pinned steps run out, remaining work finishes in
    round-robin order (every schedule is a prefix; the tail keeps
    verdicts deterministic). A step naming a finished client is a
    no-op; a step naming a blocked client attempts resume.
    """
    sdb = build_sharded_db(program, n_shards,
                           record_history=record_history)
    clients = [_Client(cid, txns) for cid, txns in enumerate(program.clients)]
    verdicts: Dict[str, str] = {}

    def step(client: _Client) -> bool:
        """Run one action; returns True on progress."""
        if client.done:
            return False
        name = txn_name(client.cid, client.txn_idx)
        sess = client.session
        try:
            if sess is not None and sess.blocked:
                value = sess.resume()
                client.results.append(value)
                client.awaiting_stmt = False
                client.stmt_idx += 1
                return True
            if client.stmt_idx == -1:
                client.session = sess = sdb.session(isolation)
                sess.begin(isolation, read_only=client.txn.read_only)
                client.results = []
                client.stmt_idx = 0
                return True
            if client.stmt_idx < len(client.txn.stmts):
                stmt = client.txn.stmts[client.stmt_idx]
                if not stmt.guard_passes(client.results):
                    client.results.append(None)
                    client.stmt_idx += 1
                    return True
                op = stmt.to_op(client.results)
                client.awaiting_stmt = True
                value = getattr(sess, op.method)(*op.args, **op.kwargs)
                client.awaiting_stmt = False
                client.results.append(value)
                client.stmt_idx += 1
                return True
            ok = sess.commit()
            verdicts[name] = "committed" if ok else "aborted"
            client.txn_idx += 1
            client.stmt_idx = -1
            return True
        except WouldBlock:
            return True  # parked; progress resumes via resume()
        except RetryableError:
            if sess is not None and sess.in_transaction():
                sess.rollback()
            verdicts[name] = "aborted"
            client.awaiting_stmt = False
            client.txn_idx += 1
            client.stmt_idx = -1
            return True
        except ReproError:
            if sess is not None and sess.in_transaction():
                sess.rollback()
            verdicts[name] = "aborted"
            client.awaiting_stmt = False
            client.txn_idx += 1
            client.stmt_idx = -1
            return True

    for cid in schedule:
        step(clients[cid])
    # Fairness tail: drain remaining work round-robin.
    rounds = 0
    while any(not c.done for c in clients):
        rounds += 1
        if rounds > max_extra_rounds:
            raise RuntimeError(
                "schedule drain did not converge (livelocked clients)")
        for client in clients:
            step(client)

    rows = _final_rows(sdb, program)
    check = sdb.check_serializable() if record_history else None
    return ShardedRun(verdicts, rows, check)


def _final_rows(sdb: ShardedDatabase, program: Program) -> Dict[str, list]:
    out: Dict[str, list] = {}
    sess = sdb.session(IsolationLevel.REPEATABLE_READ)
    for spec in program.tables:
        rows = sess.run_transaction(
            lambda s, name=spec.name: s.select(name))
        out[spec.name] = sorted((dict(r) for r in rows),
                                key=lambda r: sorted(r.items(),
                                                     key=str))
    return out


# ---------------------------------------------------------------------------
# deterministic schedule generation
# ---------------------------------------------------------------------------
def client_steps(program: Program, cid: int) -> int:
    """Pinned steps client ``cid`` needs: per txn, BEGIN + statements
    + COMMIT."""
    return sum(1 + len(txn.stmts) + 1 for txn in program.clients[cid])


def schedules_for(program: Program,
                  max_interleavings: int = 64) -> List[List[int]]:
    """The pinned-schedule suite for one program (deterministic)."""
    n = len(program.clients)
    steps = [client_steps(program, cid) for cid in range(n)]
    out: List[List[int]] = []
    seen = set()

    def emit(schedule: List[int]) -> None:
        key = tuple(schedule)
        if key not in seen:
            seen.add(key)
            out.append(schedule)

    # Serial orders: every client permutation.
    for perm in itertools.permutations(range(n)):
        emit([cid for cid in perm for _ in range(steps[cid])])
    # Round-robin from every starting client.
    for start in range(n):
        order = [(start + i) % n for i in range(n)]
        schedule: List[int] = []
        remaining = list(steps)
        while any(remaining):
            for cid in order:
                if remaining[cid]:
                    remaining[cid] -= 1
                    schedule.append(cid)
        emit(schedule)
    # Overlap: everyone BEGINs and runs all statements, then commits in
    # client order -- the canonical anomaly shape.
    overlap: List[int] = []
    for cid in range(n):
        overlap.extend([cid] * (steps[cid] - 1))
    overlap.extend(range(n))
    emit(overlap)
    # Lexicographic enumeration of full interleavings, capped.
    budget = max_interleavings

    def dfs(remaining: List[int], prefix: List[int]) -> None:
        nonlocal budget
        if budget <= 0:
            return
        if not any(remaining):
            emit(list(prefix))
            budget -= 1
            return
        for cid in range(n):
            if remaining[cid]:
                remaining[cid] -= 1
                prefix.append(cid)
                dfs(remaining, prefix)
                prefix.pop()
                remaining[cid] += 1

    dfs(list(steps), [])
    return out


# ---------------------------------------------------------------------------
# the sweep oracle
# ---------------------------------------------------------------------------
def differential_sweep(program: Program, *,
                       shard_counts: Tuple[int, int] = (1, 2),
                       isolation: IsolationLevel =
                       IsolationLevel.SERIALIZABLE,
                       max_interleavings: int = 64,
                       schedules: Optional[List[List[int]]] = None
                       ) -> Dict[str, Any]:
    """Replay every pinned schedule on both deployments and compare.

    Returns a report; raises AssertionError on the first divergence
    (verdicts or rows differing between shard counts) or, under
    SERIALIZABLE, on any non-serializable merged Adya graph.
    """
    lo, hi = shard_counts
    if schedules is None:
        schedules = schedules_for(program,
                                  max_interleavings=max_interleavings)
    anomalies = 0
    for idx, schedule in enumerate(schedules):
        run_lo = run_schedule(program, lo, schedule, isolation)
        run_hi = run_schedule(program, hi, schedule, isolation)
        tag = f"schedule {idx} ({len(schedule)} steps)"
        assert run_lo.verdicts == run_hi.verdicts, (
            f"{tag}: verdicts diverged between {lo}-shard "
            f"{run_lo.verdicts} and {hi}-shard {run_hi.verdicts}")
        assert run_lo.rows == run_hi.rows, (
            f"{tag}: final rows diverged between {lo}-shard and "
            f"{hi}-shard deployments")
        for shards, run in ((lo, run_lo), (hi, run_hi)):
            if not run.check.serializable:
                anomalies += 1
                if isolation.uses_ssi:
                    raise AssertionError(
                        f"{tag}: non-serializable commit on {shards}-shard "
                        f"deployment under {isolation.value}: cycle "
                        f"{run.check.cycle}")
    return {"schedules": len(schedules), "anomalies": anomalies}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: sweep the whole corpus (the `shards` CI job)."""
    import argparse
    from repro.explore.corpus import BUILTIN_PROGRAMS

    parser = argparse.ArgumentParser(
        description="sharded differential sweep over the explore corpus")
    parser.add_argument("--programs", nargs="*",
                        default=sorted(BUILTIN_PROGRAMS))
    parser.add_argument("--max-interleavings", type=int, default=24)
    parser.add_argument("--shards", type=int, nargs=2, default=(1, 2))
    args = parser.parse_args(argv)
    for name in args.programs:
        program = BUILTIN_PROGRAMS[name]()
        report = differential_sweep(
            program, shard_counts=tuple(args.shards),
            max_interleavings=args.max_interleavings)
        print(f"{name}: {report['schedules']} schedules, "
              f"verdict/row parity OK, SI anomalies {report['anomalies']}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
