"""Distributed SSI certification: cross-shard dangerous structures.

Each shard runs the paper's single-node SSI, which catches every
dangerous structure whose two rw-antidependency edges both live on one
shard (branch transactions participate in each shard's local conflict
graph like any other transaction). What no single shard can see is a
structure whose edges span shards -- the pivot of such a structure
touches both shards, so it is a multi-shard transaction, and its
per-branch conflict lists, translated from shard-local xids to global
transaction ids, are exactly the missing facts.

The :class:`GlobalCertifier` maintains that translated graph. Every
transaction -- single-shard fast path or 2PC -- runs one certification
step at commit: it exports the in/out rw-antidependency summaries of
each of its branch sxacts (keyed by global transaction id, the
PREPARE-time exchange of the issue), merges them into the global
graph, and re-runs the paper's dangerous-structure test in all three
roles the committing transaction can occupy:

* **as T3** (the commit-time rule of section 5.4): any active pivot
  with an rw edge into us and an rw edge into it is doomed -- we are
  about to become the first committer of its structure;
* **as the pivot**: an rw edge in from any T1 plus an rw edge out to a
  *committed* T3 (T3 committed first -- the section 3.3.1 commit
  ordering optimization applied globally) aborts us;
* **as T1**: an rw edge out to a pivot that already committed, whose
  own out-edge leads to a T3 that committed before it, aborts us --
  this is the role a lazily-read structure surfaces in when both
  other parties beat us to the commit point.

Because edges are exported at commit time (not at read/write time as
on a single node), the *later* certification of any edge's two
endpoints always sees the full structure; dooming and the safe-retry
victim preference (pivot first, never a committed peer, acting
transaction last) mirror ``SSIManager._choose_victim``.

Certification is also where cross-shard *snapshot* atomicity is
policed: a multi-shard transaction acquires its branch snapshots
lazily, so a multi-shard commit that lands between two of its branch
begins could be visible on the second shard but not the first -- a
fractured read no rw-edge exchange can see (it shows up as a wr/rw
cycle with no pivot). The certifier therefore keeps a short ring of
recent multi-shard commit footprints; beginning a late branch checks
the ring and restarts the transaction (retryable 40001) when such a
commit intersects both an already-snapshotted shard and the new one.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import AbortCause, SerializationFailure

#: Pseudo-gid standing in for every summarized old committed
#: transaction (section 6.2's OldCommittedSxact, globally).
OLD_COMMITTED_GID = "~old"


class GXactState:
    ACTIVE = "active"
    #: Certified: commit sequence assigned, local/branch commits being
    #: applied. Treated as committed by every check (conservative: it
    #: can still fail its local commit and become aborted).
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class GlobalXact:
    """Certifier-side record of one global transaction."""

    __slots__ = ("gid", "state", "commit_seq", "begin_seq",
                 "in_conflicts", "out_conflicts", "doomed", "doom_info")

    def __init__(self, gid: str, begin_seq: int) -> None:
        self.gid = gid
        self.state = GXactState.ACTIVE
        self.commit_seq: Optional[int] = None
        self.begin_seq = begin_seq
        #: gids with an rw-antidependency edge INTO this txn (they read
        #: an old version of something this txn wrote).
        self.in_conflicts: Set[str] = set()
        #: gids this txn has an rw edge OUT to (this txn read an old
        #: version of something they wrote).
        self.out_conflicts: Set[str] = set()
        self.doomed = False
        self.doom_info: Optional[dict] = None

    @property
    def finished(self) -> bool:
        return self.state in (GXactState.COMMITTED, GXactState.ABORTED)


class GlobalCertifier:
    """The cross-shard rw-antidependency graph and its commit test."""

    def __init__(self, *, multi_commit_ring: int = 8192) -> None:
        # One lock guards every certifier structure. It is never held
        # across an engine-latch acquisition (certification is pure
        # dict work; branch prepares/commits happen outside it), so it
        # needs no rank in the engine latch order.
        self._lock = threading.RLock()
        self._txns: Dict[str, GlobalXact] = {}
        #: (shard index, local xid) -> gid, for edge translation.
        self._gid_by_branch: Dict[Tuple[int, int], str] = {}
        self._seq = 0
        # -- snapshot-coherence ring (see module docstring) -----------
        #: Monotone count of multi-shard commit *applications*.
        self.epoch = 0
        #: Recent multi-shard commit write footprints: (epoch, shards).
        self._multi_commits: deque = deque(maxlen=multi_commit_ring)
        #: Epochs below this may have been dropped from the ring.
        self._pruned_through = 0
        self._ring_cap = multi_commit_ring
        # The summarized-old-committed pseudo transaction: committed
        # before everything.
        old = GlobalXact(OLD_COMMITTED_GID, begin_seq=0)
        old.state = GXactState.COMMITTED
        old.commit_seq = 0
        self._txns[OLD_COMMITTED_GID] = old

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, gid: str) -> GlobalXact:
        with self._lock:
            if gid in self._txns:
                raise ValueError(f"duplicate global transaction id {gid!r}")
            gx = GlobalXact(gid, begin_seq=self._seq)
            self._txns[gid] = gx
            return gx

    def note_branch(self, gid: str, shard: int, xid: int) -> None:
        """Record a branch's shard-local xid so later exports from any
        transaction can translate edges touching it back to ``gid``."""
        with self._lock:
            self._gid_by_branch[(shard, xid)] = gid

    def abort(self, gid: str) -> None:
        with self._lock:
            gx = self._txns.get(gid)
            if gx is not None and not gx.finished:
                gx.state = GXactState.ABORTED

    def finish_commit(self, gid: str) -> None:
        """The branch/local commits of a certified transaction are all
        applied; it is now fully committed."""
        with self._lock:
            gx = self._txns[gid]
            if gx.state is not GXactState.ABORTED:
                gx.state = GXactState.COMMITTED

    def state_of(self, gid: str) -> Optional[str]:
        with self._lock:
            gx = self._txns.get(gid)
            return None if gx is None else gx.state

    def commit_seq_of(self, gid: str) -> Optional[int]:
        with self._lock:
            gx = self._txns.get(gid)
            return None if gx is None else gx.commit_seq

    # ------------------------------------------------------------------
    # dooming
    # ------------------------------------------------------------------
    def ensure_not_doomed(self, gid: str, *, at: str = "commit") -> None:
        with self._lock:
            gx = self._txns.get(gid)
            if gx is None or not gx.doomed:
                return
            info = gx.doom_info or {}
        raise SerializationFailure(
            f"could not serialize access due to read/write dependencies "
            f"among distributed transactions ({gid} doomed as cross-shard "
            f"pivot, detected at {at})",
            reason="cross-shard dangerous structure",
            cause=AbortCause.DOOMED_AT_COMMIT,
            rule=info.get("rule", "distributed"))

    def _doom(self, gx: GlobalXact, *, t1: str, t3: str, rule: str) -> None:
        gx.doomed = True
        if gx.doom_info is None:
            gx.doom_info = {"t1": t1, "t3": t3, "rule": rule}

    # ------------------------------------------------------------------
    # edge export
    # ------------------------------------------------------------------
    def _translate(self, shard: int, peer) -> Optional[str]:
        """Map one shard-local conflicting sxact to its gid. A peer
        with no xid is the shard's summarized-old-committed dummy."""
        xid = getattr(peer, "xid", None)
        if xid is None:
            return OLD_COMMITTED_GID
        return self._gid_by_branch.get((shard, xid))

    def _export_edges(self, gid: str,
                      branch_sxacts: Iterable[Tuple[int, object]]) -> None:
        """Merge the in/out conflict lists of every branch sxact into
        the global graph, translated local-xid -> gid (the PREPARE-time
        antidependency-summary exchange)."""
        gx = self._txns[gid]
        for shard, sx in branch_sxacts:
            if sx is None:
                continue  # snapshot-isolation branch: no SSI state
            for peer in sx.in_conflicts:
                peer_gid = self._translate(shard, peer)
                if peer_gid is None or peer_gid == gid:
                    continue
                gx.in_conflicts.add(peer_gid)
                peer_gx = self._txns.get(peer_gid)
                if peer_gx is not None:
                    peer_gx.out_conflicts.add(gid)
            for peer in sx.out_conflicts:
                peer_gid = self._translate(shard, peer)
                if peer_gid is None or peer_gid == gid:
                    continue
                gx.out_conflicts.add(peer_gid)
                peer_gx = self._txns.get(peer_gid)
                if peer_gx is not None:
                    peer_gx.in_conflicts.add(gid)
            # Section 6.2 summary flags on the branch itself.
            if getattr(sx, "summary_conflict_out", False):
                gx.out_conflicts.add(OLD_COMMITTED_GID)
            if getattr(sx, "summary_in_max_seq", None) not in (None, 0):
                gx.in_conflicts.add(OLD_COMMITTED_GID)

    # ------------------------------------------------------------------
    # certification
    # ------------------------------------------------------------------
    def certify(self, gid: str,
                branch_sxacts: Iterable[Tuple[int, object]]) -> int:
        """The commit-time dangerous-structure test for ``gid``.

        Exports the branch conflict summaries, checks the committing
        transaction in all three structure roles, dooms or aborts per
        the safe-retry rules, and -- on success -- assigns the global
        commit sequence number and moves the transaction to COMMITTING.
        Raises SerializationFailure when ``gid`` itself must die.
        """
        with self._lock:
            gx = self._txns[gid]
            self._export_edges(gid, branch_sxacts)
            if gx.doomed:
                gx.state = GXactState.ABORTED
                info = gx.doom_info or {}
                raise SerializationFailure(
                    f"could not serialize access due to read/write "
                    f"dependencies among distributed transactions "
                    f"({gid} doomed as cross-shard pivot)",
                    reason="cross-shard dangerous structure",
                    cause=AbortCause.DOOMED_AT_COMMIT,
                    rule=info.get("rule", "distributed"))
            self._check_as_pivot(gx)
            self._check_as_t1(gx)
            self._check_as_t3(gx)
            self._seq += 1
            gx.commit_seq = self._seq
            gx.state = GXactState.COMMITTING
            return gx.commit_seq

    # -- the three roles ------------------------------------------------
    def _peer(self, gid: str) -> Optional[GlobalXact]:
        return self._txns.get(gid)

    def _committed_like(self, gx: GlobalXact) -> bool:
        return gx.state in (GXactState.COMMITTING, GXactState.COMMITTED)

    def _check_as_t3(self, gx: GlobalXact) -> None:
        """Committing transaction is T3: doom every active pivot.

        We are about to take the earliest commit seq of the structure
        (any committed pivot/T1 committed before us, which makes the
        structure a commit-ordering false positive and is skipped).
        ``t1 is gx`` -- the two-transaction write skew where the edge
        list wraps straight back to us -- counts as dangerous.
        """
        for pivot_gid in list(gx.in_conflicts):
            pivot = self._peer(pivot_gid)
            if pivot is None or pivot.finished or pivot.doomed:
                continue
            if self._committed_like(pivot):
                continue  # pivot committed before us: we are not first
            for t1_gid in list(pivot.in_conflicts):
                if t1_gid == pivot_gid:
                    continue
                t1 = self._peer(t1_gid)
                if t1 is None or t1.state is GXactState.ABORTED:
                    continue
                if t1 is not gx and self._committed_like(t1):
                    continue  # T1 committed before T3: false positive
                self._doom(pivot, t1=t1_gid, t3=gx.gid,
                           rule="distributed_commit_order")
                break

    def _check_as_pivot(self, gx: GlobalXact) -> None:
        """Committing transaction is the pivot: in-edge from a live T1
        plus out-edge to a T3 that committed first kills us (safe
        retry prefers the pivot, and we are the acting transaction)."""
        t3_hit = None
        for t3_gid in gx.out_conflicts:
            t3 = self._peer(t3_gid)
            if t3 is None or t3.state is GXactState.ABORTED:
                continue
            if not self._committed_like(t3):
                continue  # T3 not committed: structure incomplete
            for t1_gid in gx.in_conflicts:
                t1 = self._peer(t1_gid)
                if t1 is None or t1.state is GXactState.ABORTED:
                    continue
                if (self._committed_like(t1) and t1.commit_seq is not None
                        and t3.commit_seq is not None
                        and t1.commit_seq < t3.commit_seq):
                    continue  # T1 committed before T3: false positive
                t3_hit = (t1_gid, t3_gid, t3.commit_seq)
                break
            if t3_hit:
                break
        if t3_hit:
            t1_gid, t3_gid, t3_seq = t3_hit
            gx.state = GXactState.ABORTED
            raise SerializationFailure(
                f"could not serialize access due to read/write dependencies "
                f"among distributed transactions ({gx.gid} is the pivot of "
                f"{t1_gid} -rw-> {gx.gid} -rw-> {t3_gid})",
                reason="cross-shard dangerous structure",
                cause=AbortCause.PIVOT,
                t3_commit_seq=t3_seq,
                rule="distributed_commit_order")

    def _check_as_t1(self, gx: GlobalXact) -> None:
        """Committing transaction is T1: its out-edge reaches a pivot.

        Active pivot: doom it (it dies at its own certification; we may
        commit). Committed pivot whose T3 committed before it: every
        other party is beyond aborting -- the acting transaction dies
        (the UNABORTABLE case of section 5.4, surfacing here because
        edges were exported after both commits).
        """
        for pivot_gid in gx.out_conflicts:
            pivot = self._peer(pivot_gid)
            if pivot is None or pivot.state is GXactState.ABORTED:
                continue
            for t3_gid in list(pivot.out_conflicts):
                if t3_gid == gx.gid or t3_gid == pivot_gid:
                    continue
                t3 = self._peer(t3_gid)
                if t3 is None or not self._committed_like(t3):
                    continue
                if self._committed_like(pivot):
                    if (pivot.commit_seq is not None
                            and t3.commit_seq is not None
                            and t3.commit_seq < pivot.commit_seq):
                        gx.state = GXactState.ABORTED
                        raise SerializationFailure(
                            f"could not serialize access due to read/write "
                            f"dependencies among distributed transactions "
                            f"({gx.gid} -rw-> committed pivot {pivot_gid} "
                            f"-rw-> {t3_gid}, T3 committed first)",
                            reason="cross-shard dangerous structure",
                            cause=AbortCause.UNABORTABLE,
                            t3_commit_seq=t3.commit_seq,
                            rule="distributed_commit_order")
                elif not pivot.doomed:
                    self._doom(pivot, t1=gx.gid, t3=t3_gid,
                               rule="distributed_commit_order")

    # ------------------------------------------------------------------
    # snapshot coherence across lazy branch begins
    # ------------------------------------------------------------------
    def register_multi_commit(self, shards: Iterable[int]) -> None:
        """Record the branch footprint of a committing multi-shard
        transaction, called *before* any branch commit applies
        (conservative: a late branch begin racing the application sees
        the footprint and restarts). The footprint covers every branch
        shard including read-only ones -- committing also fixes the
        concurrent/not-concurrent judgement a later writer on a
        read-only branch's shard will make, which silently drops the
        local rw edge a fractured observer would need."""
        with self._lock:
            self.epoch += 1
            if len(self._multi_commits) == self._ring_cap:
                self._pruned_through = self._multi_commits[0][0]
            self._multi_commits.append((self.epoch, frozenset(shards)))

    def check_branch_coherence(self, gid: str,
                               branch_epochs: Dict[int, int],
                               new_shard: int) -> None:
        """Beginning a branch on ``new_shard`` after earlier branches:
        restart (retryable 40001) if any multi-shard commit wrote to
        both the new shard and an already-snapshotted one after that
        branch's snapshot -- the fractured read would be invisible to
        the rw-edge exchange."""
        if not branch_epochs:
            return
        with self._lock:
            oldest_needed = min(branch_epochs.values())
            if oldest_needed < self._pruned_through:
                raise SerializationFailure(
                    f"could not serialize access: transaction {gid} "
                    f"outlived the cross-shard commit history window",
                    reason="cross-shard snapshot coherence",
                    rule="distributed_snapshot")
            for epoch, footprint in reversed(self._multi_commits):
                if epoch <= oldest_needed:
                    break
                if new_shard not in footprint:
                    continue
                for shard, begun_at in branch_epochs.items():
                    if begun_at < epoch and shard in footprint:
                        raise SerializationFailure(
                            f"could not serialize access: cross-shard "
                            f"commit became visible between branch "
                            f"snapshots of {gid} (shards {shard} and "
                            f"{new_shard})",
                            reason="cross-shard snapshot coherence",
                            rule="distributed_snapshot")

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            states: Dict[str, int] = {}
            for gx in self._txns.values():
                states[gx.state] = states.get(gx.state, 0) + 1
            return {"txns": len(self._txns) - 1,
                    "edges": sum(len(gx.out_conflicts)
                                 for gx in self._txns.values()),
                    "multi_commit_epoch": self.epoch,
                    **{f"state_{k}": v for k, v in states.items()}}

    def compact(self, keep_finished: int = 1024) -> int:
        """Drop edge lists and branch translations of long-finished
        transactions (those that finished before every active
        transaction began), bounding certifier memory on long runs."""
        with self._lock:
            active_floor = min(
                (gx.begin_seq for gx in self._txns.values()
                 if not gx.finished and gx.gid != OLD_COMMITTED_GID),
                default=self._seq)
            finished = [gx for gx in self._txns.values()
                        if gx.finished and gx.gid != OLD_COMMITTED_GID
                        and (gx.commit_seq or 0) < active_floor
                        and gx.begin_seq < active_floor]
            if len(finished) <= keep_finished:
                return 0
            finished.sort(key=lambda gx: gx.commit_seq or 0)
            victims = finished[:len(finished) - keep_finished]
            victim_gids = {gx.gid for gx in victims}
            for gx in victims:
                del self._txns[gx.gid]
            for gx in self._txns.values():
                if gx.in_conflicts & victim_gids:
                    gx.in_conflicts -= victim_gids
                    gx.in_conflicts.add(OLD_COMMITTED_GID)
                if gx.out_conflicts & victim_gids:
                    gx.out_conflicts -= victim_gids
            self._gid_by_branch = {
                k: g for k, g in self._gid_by_branch.items()
                if g not in victim_gids}
            return len(victims)
