"""Wire protocol: line-delimited JSON frames.

One request or response per line (UTF-8 JSON, ``\\n`` terminated) --
trivially debuggable with ``nc``/``telnet`` and language-neutral.

Requests::

    {"id": 1, "op": "hello", "token": "...", "isolation": "serializable"}
    {"id": 2, "op": "sql", "sql": "SELECT * FROM t WHERE k = 1"}
    {"id": 3, "op": "ping"}
    {"id": 4, "op": "close"}

Responses echo ``id`` and carry either a result or a structured error::

    {"id": 2, "ok": true, "result": [...], "txn": "idle"}
    {"id": 2, "ok": false, "txn": "failed",
     "error": {"type": "SerializationFailure", "sqlstate": "40001",
               "message": "...", "retryable": true, ...}}

``txn`` reports the connection's transaction state after the request
(``idle`` / ``open`` / ``failed``), so clients know when a ROLLBACK is
required without parsing messages. The ``error`` object always carries
``sqlstate`` and ``retryable`` (satellite: SQLSTATE as a structured
field); SerializationFailure additionally ships its dangerous-structure
fields (cause, pivot/T1/T3 xids, confirming rule) so a remote client
sees the same post-mortem detail a local caller gets from the
exception object.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ProtocolError, ReproError

#: Protocol revision, reported in the hello response.
WIRE_VERSION = 1

#: Maximum frame size in bytes; longer lines are a protocol error
#: (bounds per-connection memory against hostile or broken clients).
MAX_FRAME_BYTES = 1 << 20

#: Request operations a connection may carry.
OPS = ("hello", "sql", "ping", "close")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One JSON object, newline-terminated."""
    return (json.dumps(payload, separators=(",", ":"), default=_fallback)
            + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises ProtocolError on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


def request_op(payload: Dict[str, Any]) -> Tuple[Any, str]:
    """Validate a request frame; returns (id, op)."""
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return payload.get("id"), op


# ----------------------------------------------------------------------
# result serialization
# ----------------------------------------------------------------------
def _fallback(value: Any) -> Any:
    """json.dumps fallback for engine objects that cross the wire
    (e.g. RelationStats from ANALYZE): dataclasses become dicts,
    anything else its repr. Row values themselves are plain scalars."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, tuple):
        return list(value)
    return repr(value)


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def ok_response(request_id: Any, result: Any,
                txn: Optional[str] = None, **extra: Any) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"id": request_id, "ok": True,
                               "result": result}
    if txn is not None:
        payload["txn"] = txn
    payload.update(extra)
    return payload


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """The structured error object for one exception."""
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "sqlstate": getattr(exc, "sqlstate", "XX000"),
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
    }
    # SerializationFailure post-mortem fields (PR 1's abort taxonomy).
    cause = getattr(exc, "cause", None)
    if cause is not None:
        payload["cause"] = getattr(cause, "value", str(cause))
    for attr in ("pivot_xid", "t1_xid", "t3_xid", "rule"):
        value = getattr(exc, attr, None)
        if value is not None:
            payload[attr] = value
    return payload


def error_response(request_id: Any, exc: BaseException,
                   txn: Optional[str] = None) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"id": request_id, "ok": False,
                               "error": error_payload(exc)}
    if txn is not None:
        payload["txn"] = txn
    return payload


def raise_for_error(payload: Dict[str, Any]) -> None:
    """Client side: raise the engine exception class matching a
    response's error object (so remote callers catch the very same
    classes -- SerializationFailure, DeadlockDetected, ... -- local
    callers do)."""
    if payload.get("ok", False):
        return
    error = payload.get("error") or {}
    sqlstate = error.get("sqlstate", "XX000")
    message = error.get("message", "server error")
    cls = _CLASS_BY_SQLSTATE.get(sqlstate)
    if cls is not None:
        raise cls(message)
    if error.get("retryable", False):
        from repro.errors import RetryableError
        raise RetryableError(message)
    raise ReproError(message)


def _classes_by_sqlstate() -> Dict[str, type]:
    """Map every ReproError subclass's SQLSTATE to the most derived
    class claiming it (walked once at import)."""
    out: Dict[str, type] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        state = cls.__dict__.get("sqlstate")
        if state is not None:
            out[state] = cls
    return out


_CLASS_BY_SQLSTATE = _classes_by_sqlstate()
