"""Per-connection lifecycle: state machine, dispatch, backpressure.

:class:`ConnectionCore` is transport-independent -- both the threaded
and the asyncio front ends feed it decoded request frames and write
back whatever response dict it returns. The lifecycle state machine::

    HANDSHAKE --hello--> READY --close/EOF/error--> CLOSED
        |                  |
        +--bad auth--------+--> CLOSED (with implicit ROLLBACK)

Transaction state (idle / open / failed) lives in the engine session,
not here; the core only distinguishes "may this connection run SQL yet"
from "is it gone". Closing in any state rolls back an open transaction
(PostgreSQL's behaviour when a backend loses its client).

:class:`ThreadedConnection` is the threaded transport: one reader
thread (socket -> bounded queue) and one worker thread (queue ->
engine -> socket). The queue bound is the per-connection backpressure
satellite: a client that pipelines faster than its statements execute
gets ``53300 TooManyConnections`` rejections (retryable) instead of
growing server memory without limit.
"""

from __future__ import annotations

import enum
import queue
import socket
import threading
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # import cycle: server.py imports this module
    from repro.server.server import ReproServer

from repro.engine.latches import Latch, RANK_WIRE
from repro.errors import (AuthenticationError, ProtocolError, ReproError,
                          TooManyConnections)
from repro.server import protocol
from repro.server.engine import ISOLATION_BY_NAME, EngineSession


class ConnState(enum.Enum):
    HANDSHAKE = "handshake"
    READY = "ready"
    CLOSED = "closed"


class ConnectionCore:
    """Transport-independent request dispatch for one connection."""

    def __init__(self, server: "ReproServer", conn_id: int) -> None:
        self.server = server
        self.conn_id = conn_id
        # One request is in flight per connection at a time -- the
        # worker thread (threaded transport) or the single _consume
        # task (asyncio transport, executor handoff gives the
        # happens-before edge) is the only accessor after construction.
        self.state = ConnState.HANDSHAKE  # repro: confined(one in-flight request per connection)
        self.es: Optional[EngineSession] = None  # repro: confined(one in-flight request per connection)
        self.statements = 0  # repro: confined(one in-flight request per connection)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_request(self, payload: Dict[str, Any]
                       ) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Dispatch one decoded request frame.

        Returns ``(response, close)``; ``close`` asks the transport to
        tear the connection down after sending the response.
        """
        try:
            request_id, op = protocol.request_op(payload)
        except ProtocolError as exc:
            return protocol.error_response(payload.get("id"), exc), True
        try:
            if op == "hello":
                return self._do_hello(request_id, payload)
            if op == "ping":
                return protocol.ok_response(request_id, "pong",
                                            txn=self._txn()), False
            if op == "close":
                return protocol.ok_response(request_id, "bye",
                                            txn="idle"), True
            return self._do_sql(request_id, payload)
        except ReproError as exc:
            close = isinstance(exc, (ProtocolError, AuthenticationError))
            return protocol.error_response(request_id, exc,
                                           txn=self._txn()), close
        except Exception as exc:  # sanitizer violations, engine bugs
            self.server.record_fatal(exc)
            return protocol.error_response(request_id, exc,
                                           txn=self._txn()), True

    def _do_hello(self, request_id: Any, payload: Dict[str, Any]
                  ) -> Tuple[Dict[str, Any], bool]:
        if self.state is not ConnState.HANDSHAKE:
            raise ProtocolError("hello already completed")
        config = self.server.config
        if config.auth_token is not None:
            if payload.get("token") != config.auth_token:
                self.server.count("server.auth_failures")
                raise AuthenticationError("authentication failed")
        name = payload.get("isolation", config.default_isolation)
        level = ISOLATION_BY_NAME.get(name)
        if level is None:
            raise ProtocolError(
                f"unknown isolation level {name!r} "
                f"(expected one of {sorted(ISOLATION_BY_NAME)})")
        self.es = self.server.engine.open_session(level)
        self.state = ConnState.READY
        return protocol.ok_response(
            request_id, {"server": "repro", "wire_version":
                         protocol.WIRE_VERSION, "conn_id": self.conn_id,
                         "isolation": level.value},
            txn="idle"), False

    def _do_sql(self, request_id: Any, payload: Dict[str, Any]
                ) -> Tuple[Dict[str, Any], bool]:
        if self.state is not ConnState.READY or self.es is None:
            raise ProtocolError("hello required before sql")
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("sql op requires a string 'sql' field")
        self.statements += 1
        result = self.server.timed_execute(self.es, sql)
        return protocol.ok_response(request_id, result,
                                    txn=self._txn()), False

    def _txn(self) -> str:
        return self.es.txn_status if self.es is not None else "idle"

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent: roll back any open transaction, free the engine
        session."""
        if self.state is ConnState.CLOSED:
            return
        self.state = ConnState.CLOSED
        if self.es is not None:
            es, self.es = self.es, None
            self.server.engine.close_session(es)


#: Reader-thread EOF marker for the request queue.
_SENTINEL = object()


class ThreadedConnection:
    """Threaded transport: reader thread + worker thread + bounded
    request queue around one ConnectionCore."""

    def __init__(self, server: "ReproServer", sock: socket.socket,
                 conn_id: int) -> None:
        self.core = ConnectionCore(server, conn_id)
        self.server = server
        self.sock = sock
        self.rfile = sock.makefile("rb")
        self.requests: "queue.Queue[Any]" = queue.Queue(
            maxsize=server.config.queue_depth)
        #: Serializes socket writes (reader-thread backpressure
        #: rejections interleave with worker-thread responses).
        self.wire_latch = Latch(f"wire:{conn_id}", RANK_WIRE)
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-conn-{conn_id}-reader",
            daemon=True)
        self._worker = threading.Thread(
            target=self._work_loop, name=f"repro-conn-{conn_id}-worker",
            daemon=True)
        self._torn_down = threading.Event()

    @property
    def conn_id(self) -> int:
        return self.core.conn_id

    def start(self) -> None:
        self._reader.start()
        self._worker.start()

    # ------------------------------------------------------------------
    # wire
    # ------------------------------------------------------------------
    def send(self, payload: Dict[str, Any]) -> None:
        try:
            with self.wire_latch:
                self.sock.sendall(protocol.encode_frame(payload))
        except OSError:
            pass  # client went away; the reader loop will see EOF

    # ------------------------------------------------------------------
    # reader thread: socket -> bounded queue
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_FRAME_BYTES + 2)
            except (OSError, ValueError):
                break
            if not line:
                break  # EOF
            try:
                payload = protocol.decode_frame(line.rstrip(b"\r\n"))
            except ProtocolError as exc:
                self.send(protocol.error_response(None, exc))
                break  # framing is broken; terminate like PostgreSQL
            try:
                self.requests.put_nowait(payload)
            except queue.Full:
                self.server.count("server.backpressure_rejections")
                self.send(protocol.error_response(
                    payload.get("id"), TooManyConnections(
                        "request queue full "
                        f"(depth {self.server.config.queue_depth}); "
                        "retry with backoff")))
                continue
            if payload.get("op") == "close":
                break  # let the worker drain; stop reading
        self.requests.put(_SENTINEL)

    # ------------------------------------------------------------------
    # worker thread: queue -> engine -> socket
    # ------------------------------------------------------------------
    def _work_loop(self) -> None:
        try:
            while True:
                payload = self.requests.get()
                if payload is _SENTINEL:
                    break
                response, close = self.core.handle_request(payload)
                if response is not None:
                    self.send(response)
                if close:
                    break
        finally:
            self._teardown()

    def _teardown(self) -> None:
        if self._torn_down.is_set():
            return
        self._torn_down.set()
        # Unblock a reader parked on a full queue before closing.
        while True:
            try:
                self.requests.get_nowait()
            except queue.Empty:
                break
        try:
            self.core.close()
        finally:
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.rfile.close()
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
            self.server.unregister(self)

    # ------------------------------------------------------------------
    # server-driven shutdown
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Force the connection down (server.stop): closing the socket
        EOFs the reader, which sentinels the worker, which tears down."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def join(self, timeout: float) -> bool:
        """True when both threads exited within ``timeout`` seconds."""
        self._reader.join(timeout)
        self._worker.join(timeout)
        return not (self._reader.is_alive() or self._worker.is_alive())
