"""Thread-safe engine front: the engine latch around every entry.

The :class:`Database` and everything under it is single-threaded by
design; :class:`ThreadSafeEngine` is the *only* path by which server
threads reach it. Every entry (statement, session open/close, rollback)
runs holding the engine latch (:mod:`repro.engine.latches`), so engine
state mutations stay as atomic under OS threads as they are under the
deterministic scheduler. Real concurrency comes from the points where
the latch is released mid-statement:

* **parking**: a statement that must wait (queued lock request,
  DEFERRABLE safe-snapshot wait) parks on the latch's condition
  variable via the session wait hook -- the latch is released while
  asleep, other threads' commits run, and every engine exit broadcasts
  a wakeup so the parked statement re-checks its condition;
* **scan yields**: long scans voluntarily ``bow()`` the latch every
  few pages (the thread analog of the simulator's Yield), so a bulk
  read does not starve writers.

Statement timeouts ride on parking: a wait that outlives the deadline
is cancelled -- the queued lock request is withdrawn from the lock
manager so the grant queue stays clean -- and the statement fails with
``55P03`` (lock wait) or ``57014`` (any other wait), leaving the
transaction in the FAILED state exactly like any other statement error.
"""

from __future__ import annotations

import time  # repro: noqa(DET001) -- statement-timeout deadlines are wall-clock; they bound real waits and never feed back into the logical history
from typing import Any, Optional

from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.engine.latches import EngineLatch
from repro.engine.session import Session
from repro.errors import (AdminShutdown, LockNotAvailable, StatementTimeout,
                          WouldBlock)
from repro.locks.manager import LockRequest
from repro.sql.executor import SQLSession
from repro.waits import Yield

#: hello isolation strings -> engine isolation levels.
ISOLATION_BY_NAME = {level.value: level for level in IsolationLevel}


class EngineSession:
    """One connection's engine-side state: the Session (with the wait
    hook installed) plus its SQL layer (parse cache + per-connection
    PREPARE/EXECUTE state)."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self.sql = SQLSession(session)
        #: Monotonic deadline of the statement currently executing on
        #: this session (set under the engine latch by the one thread
        #: driving this connection; never shared across sessions).
        self.deadline: Optional[float] = None  # repro: guarded-by(ENGINE)

    @property
    def txn_status(self) -> str:
        """The wire-protocol ``txn`` field: idle / open / failed."""
        txn = self.session.txn
        if txn is None:
            return "idle"
        from repro.engine.transaction import TxnStatus
        return "failed" if txn.status is TxnStatus.FAILED else "open"


class ThreadSafeEngine:
    """Serializes real-thread access to one Database."""

    def __init__(self, db: Database,
                 statement_timeout: Optional[float] = None) -> None:
        self.db = db
        self.latch = EngineLatch()
        #: Seconds one statement may spend parked before cancellation;
        #: None waits forever (deadlocks are still caught eagerly by
        #: the wait-for-graph detector at enqueue time).
        self.statement_timeout = statement_timeout
        #: Set by :meth:`shutdown`; parked statements re-check it and
        #: fail with AdminShutdown so worker threads can drain.
        self.closing = False  # repro: guarded-by(ENGINE)
        metrics = db.obs.metrics
        self._timeout_counter = metrics.counter("server.statement_timeouts")
        self._park_counter = metrics.counter("server.lock_parks")
        #: Dynamic lockset sanitizer: when the Database runs sanitized
        #: (REPRO_SANITIZE=1 or EngineConfig.sanitize.enabled), every
        #: statically-declared guarded-by fact is also enforced at
        #: runtime on the server threads this engine admits.
        self._lockset_guard = None
        if db.sanitizers is not None:
            from repro.analysis.sanitize.latch_check import LocksetSanitizer
            self._lockset_guard = LocksetSanitizer().arm()
        if db.durability is not None:
            # Group commit: WAL fsyncs run with the engine latch
            # released, so concurrent backends keep executing and their
            # commits batch under one fsync leader (WALFile.flush).
            db.durability.flush_gate = self._flush_gate

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def open_session(self, isolation: IsolationLevel) -> EngineSession:
        with self.latch:
            session = self.db.session(default_isolation=isolation)
            # Surface Yields to the wait hook so scans bow the latch.
            session.cooperative = True
            es = EngineSession(session)
            session.wait_hook = self._make_wait_hook(es)
            return es

    def close_session(self, es: EngineSession) -> None:
        """Graceful close: implicit ROLLBACK of any open transaction
        (PostgreSQL's behaviour when a backend loses its client)."""
        with self.latch:
            try:
                if es.session.txn is not None:
                    es.session.rollback()
            finally:
                self.latch.notify_all()

    def shutdown(self) -> None:
        """Begin server shutdown: wake every parked statement so it can
        notice ``closing`` and fail with AdminShutdown (57P01) instead
        of sleeping forever on a wait that will never be satisfied."""
        with self.latch:
            self.closing = True
            self.latch.notify_all()
        if self._lockset_guard is not None:
            self._lockset_guard.disarm()

    def _flush_gate(self, fn):
        """Run a WAL flush with the engine latch released.

        By the time the durability layer flushes, the commit is fully
        applied in-memory (CLOG, locks released) -- only the client ack
        waits on the fsync. Dropping the latch here is what lets other
        backends reach their own commits and ride the same fsync
        (WALFile's leader/follower batching). The latch may be held
        reentrantly; release exactly as many times as this thread holds
        it, and re-take it before returning to the engine.
        """
        from repro.engine.latches import held_latches
        depth = sum(1 for held in held_latches() if held is self.latch)
        if depth:
            self.latch.notify_all()
        for _ in range(depth):
            self.latch.release()
        try:
            return fn()
        finally:
            for _ in range(depth):
                self.latch.acquire()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def execute(self, es: EngineSession, sql: str) -> Any:
        """Run one SQL statement to completion under the engine latch.

        The wait hook parks the thread on the latch's condition
        variable whenever the statement must wait, so WouldBlock never
        escapes; every exit broadcasts a wakeup because a finished
        statement (commit, rollback, lock release at transaction end)
        may have readied other threads' wait conditions.
        """
        with self.latch:
            es.deadline = (time.monotonic() + self.statement_timeout
                           if self.statement_timeout is not None else None)
            try:
                return es.sql.execute(sql)
            except WouldBlock:  # pragma: no cover - wait hook prevents it
                raise AssertionError(
                    "WouldBlock escaped a wait-hooked session")
            finally:
                self.latch.notify_all()

    def run(self, fn, *args: Any, **kw: Any) -> Any:
        """Run an arbitrary engine-touching callable under the latch
        (setup DDL, introspection views, verify checks)."""
        with self.latch:
            try:
                return fn(*args, **kw)
            finally:
                self.latch.notify_all()

    # ------------------------------------------------------------------
    # the wait hook
    # ------------------------------------------------------------------
    def _make_wait_hook(self, es: "EngineSession"):
        def wait_hook(condition: Any) -> None:
            if isinstance(condition, Yield):
                self.latch.bow()
                return
            if getattr(condition, "ready", False):
                return
            self._park_counter.inc()
            granted = self.latch.park(
                lambda: self.closing or getattr(condition, "ready", False),
                deadline=es.deadline)
            if granted and self.closing and not getattr(condition, "ready",
                                                        False):
                if isinstance(condition, LockRequest):
                    self.db.lockmgr.cancel_request(condition)
                raise AdminShutdown(
                    "canceling statement: server is shutting down")
            if granted:
                self._check_cancelled(condition)
                return
            self._timeout_counter.inc()
            if isinstance(condition, LockRequest):
                self.db.lockmgr.cancel_request(condition)
                raise LockNotAvailable(
                    "canceling statement due to lock timeout while "
                    f"waiting for {condition.describe()}")
            raise StatementTimeout(
                "canceling statement due to statement timeout while "
                f"waiting on {condition.describe()}")

        return wait_hook

    @staticmethod
    def _check_cancelled(condition: Any) -> None:
        """A lock request that woke cancelled-but-not-granted cannot
        make progress (its transaction was torn down under it);
        resuming would spin, so fail the statement instead."""
        if (isinstance(condition, LockRequest)
                and condition.cancelled and not condition.granted):
            raise LockNotAvailable(
                f"lock wait cancelled: {condition.describe()}")
