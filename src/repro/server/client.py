"""Client library: reconnects, retries, and real exception classes.

:class:`ReproClient` is a synchronous one-request-at-a-time client for
the line-delimited JSON protocol. It re-raises server errors as the
very exception classes a local caller would see (SerializationFailure,
DeadlockDetected, TooManyConnections, ...) by mapping the structured
``sqlstate`` field back through the repro.errors hierarchy.

:meth:`ReproClient.run_transaction` is the retry loop the paper assumes
exists in every serializable application (section 3.3: clients "must
already be prepared to handle transactions aborted by serialization
failures"): it wraps the callable in BEGIN/COMMIT and transparently
re-runs it on any retryable error, sleeping an exponentially growing,
jittered backoff between attempts. Admission rejections (53300) at
connect time get the same treatment, which is what turns overload into
graceful degradation instead of client-visible failure.
"""

from __future__ import annotations

import contextlib
import random  # repro: noqa(DET001) -- retry jitter decorrelates real clients; it never feeds back into the logical history
import socket
import threading
import time  # repro: noqa(DET001) -- backoff sleeps are wall-clock by nature
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (ProtocolError, RetryableError, TooManyConnections)
from repro.server import protocol


class ReproClient:
    """One connection to a ReproServer (or a retrying factory for one)."""

    def __init__(self, address: Tuple[str, int], *,
                 token: Optional[str] = None,
                 isolation: Optional[str] = None,
                 connect_timeout: float = 10.0,
                 connect_retries: int = 10,
                 backoff_base: float = 0.01,
                 backoff_cap: float = 1.0,
                 rng: Optional[random.Random] = None) -> None:
        self.address = tuple(address)
        self.token = token
        self.isolation = isolation
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._next_id = 0
        #: Server-reported transaction state after the last response
        #: (idle / open / failed) -- drives run_transaction's cleanup.
        self.txn = "idle"
        #: Populated by connect() from the hello response.
        self.hello: Optional[Dict[str, Any]] = None
        #: Retries performed (connect + transaction), for tests/bench.
        self.retries = 0

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "ReproClient":
        """Dial and handshake; admission rejections (53300) are retried
        with exponential backoff up to ``connect_retries`` times."""
        attempt = 0
        while True:
            try:
                self._dial()
                return self
            except TooManyConnections:
                self._teardown()
                attempt += 1
                if attempt > self.connect_retries:
                    raise
                self.retries += 1
                self._sleep_backoff(attempt)

    def _dial(self) -> None:
        sock = socket.create_connection(self.address,
                                        timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        hello: Dict[str, Any] = {"op": "hello"}
        if self.token is not None:
            hello["token"] = self.token
        if self.isolation is not None:
            hello["isolation"] = self.isolation
        self.hello = self._request(hello)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._request({"op": "close"})
        except (OSError, ValueError, ProtocolError):
            pass
        except Exception:
            pass
        finally:
            self._teardown()

    def _teardown(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None
        self.txn = "idle"

    def __enter__(self) -> "ReproClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def sql(self, statement: str) -> Any:
        """Run one statement; returns rows / rowcount / None, raising
        the mapped engine exception on error."""
        return self._request({"op": "sql", "sql": statement})

    def ping(self) -> Any:
        return self._request({"op": "ping"})

    def _request(self, payload: Dict[str, Any]) -> Any:
        if self._sock is None or self._rfile is None:
            raise OSError("client is not connected")
        self._next_id += 1
        request_id = self._next_id
        payload = dict(payload, id=request_id)
        self._sock.sendall(protocol.encode_frame(payload))
        line = self._rfile.readline(protocol.MAX_FRAME_BYTES + 2)
        if not line:
            raise OSError("server closed the connection")
        response = protocol.decode_frame(line.rstrip(b"\r\n"))
        self.txn = response.get("txn", self.txn)
        rid = response.get("id")
        if rid is not None and rid != request_id:
            raise ProtocolError(
                f"response id {rid!r} does not match request {request_id}")
        protocol.raise_for_error(response)
        return response.get("result")

    # ------------------------------------------------------------------
    # the retry loop
    # ------------------------------------------------------------------
    def run_transaction(self, fn: Callable[["ReproClient"], Any], *,
                        isolation: Optional[str] = None,
                        read_only: bool = False,
                        max_retries: int = 10) -> Any:
        """Run ``fn(client)`` inside BEGIN/COMMIT, transparently
        retrying on any retryable error (40001, 40P01, 53300, 55P03,
        57014) with jittered exponential backoff."""
        begin = "BEGIN"
        if isolation is not None:
            begin += f" ISOLATION LEVEL {isolation.upper()}"
        if read_only:
            begin += " READ ONLY"
        attempt = 0
        while True:
            try:
                self.sql(begin)
                result = fn(self)
                self.sql("COMMIT")
                return result
            except RetryableError:
                self._cleanup_failed_txn()
                attempt += 1
                if attempt > max_retries:
                    raise
                self.retries += 1
                self._sleep_backoff(attempt)

    def _cleanup_failed_txn(self) -> None:
        """After a retryable failure the transaction may be open
        (statement failed, txn FAILED) or already gone (aborted at
        COMMIT); roll back only when the server says one is live."""
        if self.txn in ("open", "failed"):
            try:
                self.sql("ROLLBACK")
            except (OSError, ProtocolError):
                pass

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (attempt - 1)))
        # Full jitter: sleep U(delay/2, delay) to decorrelate retriers.
        time.sleep(delay * (0.5 + self._rng.random() / 2))


class ClientPool:
    """A bounded pool of :class:`ReproClient` connections.

    At most ``size`` connections exist at any moment; they are dialed
    lazily and reused across :meth:`acquire`/:meth:`release` cycles. An
    :meth:`acquire` that cannot get a connection within
    ``acquire_timeout`` raises :class:`TooManyConnections` -- the same
    retryable 53300 the server's own admission control uses, so the one
    retry loop callers already have (``run_transaction``) covers
    pool exhaustion too. Dead connections (server restart, network
    error) are detected on release and re-dialed on next acquire, so
    the pool self-heals without ever exceeding its bound.
    """

    def __init__(self, address: Tuple[str, int], *, size: int = 8,
                 acquire_timeout: float = 5.0, **client_kw: Any) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.address = tuple(address)
        self.size = size
        self.acquire_timeout = acquire_timeout
        self._client_kw = client_kw
        self._cond = threading.Condition()
        self._idle: List[ReproClient] = []
        self._created = 0
        self._closed = False
        #: Acquires that had to wait for a connection (gauge for tests).
        self.waits = 0
        #: Acquires rejected with TooManyConnections.
        self.exhausted = 0

    # ------------------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> ReproClient:
        """Check a connection out of the pool, dialing one lazily while
        under the bound; raises TooManyConnections after ``timeout``."""
        if timeout is None:
            timeout = self.acquire_timeout
        deadline = time.monotonic() + timeout
        with self._cond:
            waited = False
            while True:
                if self._closed:
                    raise OSError("connection pool is closed")
                if self._idle:
                    client = self._idle.pop()
                    break
                if self._created < self.size:
                    # Reserve the slot before dialing (the dial happens
                    # outside the lock); a failed dial releases it.
                    self._created += 1
                    client = None
                    break
                if not waited:
                    waited = True
                    self.waits += 1
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    self.exhausted += 1
                    raise TooManyConnections(
                        f"connection pool exhausted: {self.size} "
                        f"connections busy for {timeout:.3f}s")
        if client is None:
            try:
                client = ReproClient(self.address,
                                     **self._client_kw).connect()
            except BaseException:
                with self._cond:
                    self._created -= 1
                    self._cond.notify()
                raise
        elif client._sock is None:
            try:
                client.connect()
            except BaseException:
                with self._cond:
                    self._created -= 1
                    self._cond.notify()
                raise
        return client

    def release(self, client: ReproClient) -> None:
        """Return a connection. A connection inside a transaction is
        rolled back first; a dead one is dropped (its slot frees up)."""
        if client.txn in ("open", "failed"):
            try:
                client.sql("ROLLBACK")
            except (OSError, ProtocolError, RetryableError):
                client._teardown()
        with self._cond:
            if self._closed or client._sock is None:
                self._created -= 1
                if client._sock is not None:
                    client.close()
            else:
                self._idle.append(client)
            self._cond.notify()

    @contextlib.contextmanager
    def connection(self, timeout: Optional[float] = None):
        client = self.acquire(timeout)
        try:
            yield client
        finally:
            self.release(client)

    def run_transaction(self, fn: Callable[[ReproClient], Any],
                        **kw: Any) -> Any:
        """Acquire, run ``client.run_transaction(fn, **kw)``, release."""
        with self.connection() as client:
            return client.run_transaction(fn, **kw)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {"size": self.size, "created": self._created,
                    "idle": len(self._idle),
                    "in_use": self._created - len(self._idle),
                    "waits": self.waits, "exhausted": self.exhausted}

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._created -= len(idle)
            self._cond.notify_all()
        for client in idle:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def connect(address: Tuple[str, int], **kw: Any) -> ReproClient:
    """Module-level convenience: ``client = connect(server.address)``."""
    return ReproClient(address, **kw).connect()
