"""repro.server -- concurrent multi-client network front end.

A line-delimited JSON wire protocol over TCP, a thread-safe engine
front (the engine latch + condition-variable parking of
:mod:`repro.engine.latches`), two selectable transports (threaded and
asyncio), admission control with retryable 53300 backpressure, and a
client library whose ``run_transaction`` retries serialization
failures with jittered exponential backoff -- the middleware layer the
paper assumes around every SERIALIZABLE application (section 3.3).

Quickstart::

    from repro.engine.database import Database
    from repro.server import ReproServer, ServerConfig, connect

    server = ReproServer(Database(), ServerConfig(port=0)).start()
    client = connect(server.address)
    client.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    client.run_transaction(lambda c: c.sql("INSERT INTO t VALUES (1, 2)"))
    client.close()
    server.stop()
"""

from repro.server.client import ClientPool, ReproClient, connect
from repro.server.engine import EngineSession, ThreadSafeEngine
from repro.server.server import ReproServer, ServerConfig

__all__ = [
    "ClientPool",
    "EngineSession",
    "ReproClient",
    "ReproServer",
    "ServerConfig",
    "ThreadSafeEngine",
    "connect",
]
