"""``python -m repro.server`` -- stand up a server on a fresh database.

Example (two terminals)::

    $ python -m repro.server --port 5433
    repro server (threaded) listening on 127.0.0.1:5433

    $ printf '%s\\n' \\
        '{"id":1,"op":"hello","isolation":"serializable"}' \\
        '{"id":2,"op":"sql","sql":"CREATE TABLE t (k INT PRIMARY KEY, v INT)"}' \\
        '{"id":3,"op":"sql","sql":"INSERT INTO t VALUES (1, 10)"}' \\
        '{"id":4,"op":"sql","sql":"SELECT * FROM t"}' \\
        '{"id":5,"op":"close"}' | nc 127.0.0.1 5433
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.server.server import ReproServer, ServerConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over line-delimited JSON.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument("--mode", choices=("threaded", "asyncio"),
                        default="threaded")
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--statement-timeout", type=float, default=None,
                        help="seconds before a parked statement is "
                        "cancelled (55P03/57014); default: wait forever")
    parser.add_argument("--auth-token", default=None,
                        help="require this token in every hello (28P01 "
                        "on mismatch)")
    parser.add_argument("--isolation", default="serializable",
                        help="default isolation for connections whose "
                        "hello names none")
    parser.add_argument("--init-sql", action="append", default=[],
                        metavar="SQL", help="statement to run at startup "
                        "(repeatable), e.g. CREATE TABLE ...")
    args = parser.parse_args(argv)

    db = Database(EngineConfig())
    config = ServerConfig(
        host=args.host, port=args.port, mode=args.mode,
        max_connections=args.max_connections,
        queue_depth=args.queue_depth,
        statement_timeout=args.statement_timeout,
        auth_token=args.auth_token,
        default_isolation=args.isolation)
    server = ReproServer(db, config)

    if args.init_sql:
        from repro.engine.isolation import IsolationLevel
        es = server.engine.open_session(IsolationLevel.SERIALIZABLE)
        for sql in args.init_sql:
            server.engine.execute(es, sql)
        server.engine.close_session(es)

    server.start()
    host, port = server.address
    print(f"repro server ({config.mode}) listening on {host}:{port}",
          flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        leaks = server.stop()
        if leaks["threads"] or leaks["connections"]:
            print(f"leak report: {leaks}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
