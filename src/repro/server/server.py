"""The network front end: accept loop, admission control, shutdown.

:class:`ReproServer` owns one :class:`ThreadSafeEngine` and a registry
of live connections, and runs one of two transports over the same
:class:`~repro.server.connection.ConnectionCore` dispatch:

* ``threaded`` -- a blocking accept loop; each connection gets a
  reader thread and a worker thread (two OS threads per connection,
  the process-per-connection analog of PostgreSQL's backend model);
* ``asyncio`` -- a single event-loop thread multiplexes all sockets;
  statement execution is pushed to a thread pool so a parked statement
  never blocks the loop.

Admission control is the front door of the backpressure story: past
``max_connections`` the server writes one ``53300`` rejection frame and
closes, which the client library treats as retryable. ``stop()`` is
leak-checked -- it wakes every parked statement (AdminShutdown), kicks
every socket, joins every thread, and reports anything still alive so
the CI server job can fail on leaked connections or threads.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time  # repro: noqa(DET001) -- wire latency measurement and join timeouts are wall-clock; they never feed back into the logical history
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.database import Database
from repro.engine.latches import Latch, RANK_CONNECTIONS, RANK_METRICS
from repro.errors import ProtocolError, TooManyConnections
from repro.server import protocol
from repro.server.connection import (ConnectionCore, ThreadedConnection,
                                     _SENTINEL)
from repro.server.engine import EngineSession, ThreadSafeEngine


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port; read the real one from
    #: ``server.address`` after start().
    port: int = 0
    #: "threaded" or "asyncio".
    mode: str = "threaded"
    #: Admission-control ceiling on concurrent connections.
    max_connections: int = 64
    #: Bound on each connection's pipelined-request queue.
    queue_depth: int = 32
    #: Seconds a statement may spend parked before 55P03/57014;
    #: None waits forever.
    statement_timeout: Optional[float] = None
    #: When set, hello must carry this token (28P01 otherwise).
    auth_token: Optional[str] = None
    #: Isolation for connections whose hello names none.
    default_isolation: str = "serializable"
    accept_backlog: int = 16


class ReproServer:
    """One database, many clients."""

    def __init__(self, db: Database,
                 config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        if self.config.mode not in ("threaded", "asyncio"):
            raise ValueError(f"unknown server mode {self.config.mode!r}")
        self.db = db
        self.engine = ThreadSafeEngine(
            db, statement_timeout=self.config.statement_timeout)
        #: Guards the connection registry (rank above the engine latch:
        #: accept/teardown never touch the engine while holding it).
        self.conn_latch = Latch("connections", RANK_CONNECTIONS)
        #: Guards metric updates from arbitrary server threads.
        self.metrics_latch = Latch("metrics", RANK_METRICS)
        self._connections: Dict[int, Any] = {}  # repro: guarded-by(CONNECTIONS)
        self._next_conn_id = 0  # repro: guarded-by(CONNECTIONS)
        self._listener: Optional[socket.socket] = None  # repro: confined(set in start before the accept thread exists; read-only afterwards)
        self._accept_thread: Optional[threading.Thread] = None  # repro: confined(set in start; read-only afterwards)
        self._async: Optional[_AsyncioFrontend] = None  # repro: confined(set in start; read-only afterwards)
        self._stopping = threading.Event()
        self._stopped = False  # repro: guarded-by(CONNECTIONS)
        self.address: Optional[Tuple[str, int]] = None  # repro: confined(set in start before any server thread exists)
        #: Unexpected exceptions (sanitizer violations, engine bugs)
        #: surfaced by any connection; the CI smoke asserts this empty.
        self.fatal_errors: List[BaseException] = []  # repro: guarded-by(METRICS)
        metrics = db.obs.metrics
        self._counters = {  # repro: guarded-by(METRICS)
            name: metrics.counter(name) for name in (
                "server.connections_accepted",
                "server.connections_rejected",
                "server.backpressure_rejections",
                "server.auth_failures",
                "server.requests",
                "server.fatal_errors",
            )}
        self._latency_hist = metrics.histogram("server.latency_ns")  # repro: guarded-by(METRICS)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        if self.config.mode == "asyncio":
            self._async = _AsyncioFrontend(self)
            self._async.start()
            self.address = self._async.address
            return self
        listener = socket.create_server(
            (self.config.host, self.config.port),
            backlog=self.config.accept_backlog, reuse_port=False)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> Dict[str, List[str]]:
        """Graceful stop; returns the leak report (empty lists = clean).

        Order matters: wake parked statements first (so worker threads
        can drain), stop accepting, kick live sockets, join.
        """
        # Check-and-set under the connection latch: two racing stop()
        # calls must not both run the teardown sequence (double close
        # of the listener, double engine shutdown). The latch is
        # released before engine.shutdown -- ENGINE ranks below
        # CONNECTIONS, so holding it across the call would be exactly
        # the out-of-rank acquisition LATCH001 proves absent.
        with self.conn_latch:
            if self._stopped:
                return {"threads": [], "connections": []}
            self._stopped = True
        self._stopping.set()
        self.engine.shutdown()
        if self._listener is not None:
            # A blocked accept() does not reliably notice close() from
            # another thread; shut the socket down and poke it with a
            # throwaway connection so the accept loop observes stopping.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                try:
                    poke = socket.create_connection(self.address,
                                                    timeout=1.0)
                    poke.close()
                except OSError:
                    pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        if self._async is not None:
            self._async.stop(timeout)
        with self.conn_latch:
            live = list(self._connections.values())
        deadline = time.monotonic() + timeout
        for conn in live:
            if hasattr(conn, "kick"):
                conn.kick()
        leaked_threads: List[str] = []
        for conn in live:
            if hasattr(conn, "join"):
                remaining = max(0.1, deadline - time.monotonic())
                if not conn.join(remaining):
                    leaked_threads.append(f"conn-{conn.conn_id}")
        if (self._accept_thread is not None
                and self._accept_thread.is_alive()):
            leaked_threads.append("accept")
        if self._async is not None and self._async.leaked():
            leaked_threads.append("asyncio-loop")
        if self.engine.db.durability is not None:
            # Workers are joined, so no new WAL appends: drain the
            # group-commit queue now. An acknowledged commit (notably
            # under synchronous_commit=off) must be durable before
            # stop() returns -- a stop racing an in-flight flush used
            # to close with acked frames still unfsynced.
            self.engine.db.durability.drain()
        with self.conn_latch:
            leaked_conns = [str(cid) for cid in self._connections]
        return {"threads": leaked_threads, "connections": leaked_conns}

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # registry + admission
    # ------------------------------------------------------------------
    def admit(self) -> Optional[int]:
        """Admission control: reserve a registry slot and return its
        conn_id, or None when at max_connections (or stopping)."""
        with self.conn_latch:
            if (len(self._connections) >= self.config.max_connections
                    or self._stopping.is_set()):
                return None
            self._next_conn_id += 1
            conn_id = self._next_conn_id
            self._connections[conn_id] = None  # reserved
            return conn_id

    def register(self, handle: Any) -> None:
        with self.conn_latch:
            self._connections[handle.conn_id] = handle

    def unregister(self, handle: Any) -> None:
        with self.conn_latch:
            self._connections.pop(handle.conn_id, None)

    @property
    def active_connections(self) -> int:
        with self.conn_latch:
            return len(self._connections)

    # ------------------------------------------------------------------
    # shared services for connections
    # ------------------------------------------------------------------
    def count(self, name: str) -> None:
        with self.metrics_latch:
            self._counters[name].inc()

    def record_fatal(self, exc: BaseException) -> None:
        with self.metrics_latch:
            self.fatal_errors.append(exc)
        self.count("server.fatal_errors")

    def timed_execute(self, es: EngineSession, sql: str) -> Any:
        t0 = time.monotonic_ns()
        try:
            return self.engine.execute(es, sql)
        finally:
            elapsed = time.monotonic_ns() - t0
            with self.metrics_latch:
                self._counters["server.requests"].inc()
                self._latency_hist.observe(elapsed)

    # ------------------------------------------------------------------
    # threaded transport
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn_id = self.admit()
            if conn_id is None:
                self._reject(sock)
                continue
            conn = ThreadedConnection(self, sock, conn_id)
            self.register(conn)
            self.count("server.connections_accepted")
            conn.start()

    def _reject(self, sock: socket.socket) -> None:
        """One 53300 frame, then close (the client library retries
        with exponential backoff)."""
        self.count("server.connections_rejected")
        try:
            sock.sendall(protocol.encode_frame(protocol.error_response(
                None, TooManyConnections(
                    "too many connections "
                    f"(max {self.config.max_connections}); "
                    "retry with backoff"))))
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass


class _AsyncioFrontend:
    """Event-loop transport: one loop thread multiplexes sockets; the
    blocking engine calls run on a thread pool so a parked statement
    never stalls other connections' I/O."""

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        # start() publishes loop/executor/thread before the loop thread
        # runs; aserver/address/_start_error are written by the loop
        # thread before ready.set() and read by start() only after
        # ready.wait() -- the Event is the happens-before edge.
        self.loop: Optional[asyncio.AbstractEventLoop] = None  # repro: confined(set in start before the loop thread exists)
        self.thread: Optional[threading.Thread] = None  # repro: confined(set in start before the loop thread exists)
        self.executor: Optional[ThreadPoolExecutor] = None  # repro: confined(set in start before the loop thread exists)
        self.aserver: Optional[asyncio.AbstractServer] = None  # repro: confined(loop thread writes before ready.set; start reads after ready.wait)
        self.address: Optional[Tuple[str, int]] = None  # repro: confined(loop thread writes before ready.set; start reads after ready.wait)
        self._writers: set = set()  # repro: confined(event-loop thread only)
        self._start_error: Optional[BaseException] = None  # repro: confined(loop thread writes before ready.set; start reads after ready.wait)

    def start(self) -> None:
        config = self.server.config
        self.loop = asyncio.new_event_loop()
        self.executor = ThreadPoolExecutor(
            max_workers=config.max_connections + 2,
            thread_name_prefix="repro-async-exec")
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, args=(ready,), name="repro-asyncio-loop",
            daemon=True)
        self.thread.start()
        ready.wait(10)
        if self.address is None:
            raise RuntimeError(
                f"asyncio server failed to start: {self._start_error!r}")

    def _run(self, ready: threading.Event) -> None:
        assert self.loop is not None
        asyncio.set_event_loop(self.loop)
        config = self.server.config
        try:
            self.aserver = self.loop.run_until_complete(
                asyncio.start_server(self._handle, config.host, config.port,
                                     backlog=config.accept_backlog))
            self.address = self.aserver.sockets[0].getsockname()[:2]
        except BaseException as exc:
            self._start_error = exc
            ready.set()
            self.loop.close()
            return
        ready.set()
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()

    def stop(self, timeout: float) -> None:
        if self.loop is None or self.loop.is_closed():
            return
        try:
            fut = asyncio.run_coroutine_threadsafe(
                self._shutdown(timeout), self.loop)
            fut.result(timeout + 2)
        except Exception:
            pass
        if self.loop is not None and not self.loop.is_closed():
            self.loop.call_soon_threadsafe(self.loop.stop)
        if self.thread is not None:
            self.thread.join(timeout)
        if self.executor is not None:
            self.executor.shutdown(wait=True)

    def leaked(self) -> bool:
        return self.thread is not None and self.thread.is_alive()

    async def _shutdown(self, timeout: float) -> None:
        if self.aserver is not None:
            self.aserver.close()
            await self.aserver.wait_closed()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        if tasks:
            await asyncio.wait(tasks, timeout=timeout)

    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter,
                    payload: Dict[str, Any]) -> None:
        try:
            writer.write(protocol.encode_frame(payload))
            await writer.drain()
        except (OSError, ConnectionError):
            pass

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        server = self.server
        conn_id = server.admit()
        if conn_id is None:
            server.count("server.connections_rejected")
            await self._send(writer, protocol.error_response(
                None, TooManyConnections(
                    "too many connections "
                    f"(max {server.config.max_connections}); "
                    "retry with backoff")))
            writer.close()
            return
        core = ConnectionCore(server, conn_id)
        server.register(core)
        server.count("server.connections_accepted")
        self._writers.add(writer)
        requests: "asyncio.Queue[Any]" = asyncio.Queue(
            maxsize=server.config.queue_depth)
        consumer = asyncio.ensure_future(
            self._consume(core, requests, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (OSError, ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    payload = protocol.decode_frame(line.rstrip(b"\r\n"))
                except ProtocolError as exc:
                    await self._send(
                        writer, protocol.error_response(None, exc))
                    break
                try:
                    requests.put_nowait(payload)
                except asyncio.QueueFull:
                    server.count("server.backpressure_rejections")
                    await self._send(writer, protocol.error_response(
                        payload.get("id"), TooManyConnections(
                            "request queue full "
                            f"(depth {server.config.queue_depth}); "
                            "retry with backoff")))
                    continue
                if payload.get("op") == "close":
                    break
        finally:
            while not requests.empty():
                requests.get_nowait()
            requests.put_nowait(_SENTINEL)
            await consumer
            assert self.loop is not None and self.executor is not None
            await self.loop.run_in_executor(self.executor, core.close)
            server.unregister(core)
            self._writers.discard(writer)
            try:
                writer.close()
            except (OSError, ConnectionError):
                pass

    async def _consume(self, core: ConnectionCore,
                       requests: "asyncio.Queue[Any]",
                       writer: asyncio.StreamWriter) -> None:
        assert self.loop is not None and self.executor is not None
        while True:
            payload = await requests.get()
            if payload is _SENTINEL:
                return
            response, close = await self.loop.run_in_executor(
                self.executor, core.handle_request, payload)
            if response is not None:
                await self._send(writer, response)
            if close:
                return
