"""Streaming replication (paper section 7.2).

The master ships a logical WAL stream to read-only replicas. Plain
snapshot reads on a replica are NOT serializable under SSI (the
section 7.2 anomaly: commit order need not match the apparent serial
order), so serializable transactions on replicas are restricted to
*safe snapshots*, identified by markers the master adds to the log
stream -- the design PostgreSQL planned as future work, implemented
here.
"""

from repro.replication.wal import CommitRecord
from repro.replication.replica import Replica, ReplicaReadMode

__all__ = ["CommitRecord", "Replica", "ReplicaReadMode"]
