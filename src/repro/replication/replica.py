"""Read-only replica fed by log shipping (paper section 7.2).

The replica applies the master's logical WAL in commit order into two
materialized states:

* ``latest``: everything applied -- what PostgreSQL hot standby serves
  to REPEATABLE READ (snapshot) queries. Serializable-looking queries
  here can observe the section 7.2 anomaly, because SSI's commit order
  need not match the apparent serial order.
* ``safe``: applied only up to the most recent safe-snapshot marker in
  the log stream. SERIALIZABLE queries are served from here, which is
  the paper's proposed design ("slave replicas will run serializable
  transactions only on safe snapshots"); they may be stale but are
  never anomalous.

A serializable query can also WAIT for the next safe snapshot,
mirroring DEFERRABLE behaviour on the master.
"""

from __future__ import annotations

import enum
import time  # repro: noqa(DET001) -- the WAIT-mode deadline is wall-clock by nature; it gates an error path, never the logical history
from typing import Any, Dict, List, Optional

from typing import TYPE_CHECKING

from repro.config import EngineConfig
from repro.errors import FeatureNotSupportedError, StatementTimeout
from repro.replication.wal import CommitRecord

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: engine.database imports replication.wal for WAL records)
    from repro.engine.database import Database
    from repro.engine.predicate import Predicate


class ReplicaReadMode(enum.Enum):
    #: Snapshot-isolation read of everything applied (hot standby
    #: default; not serializable).
    LATEST = "latest"
    #: Serializable: read the most recent safe snapshot (may be stale).
    LATEST_SAFE = "latest_safe"
    #: Serializable, DEFERRABLE-style: catch up and wait (bounded) for
    #: a safe snapshot if none exists yet; raises retryable 57014 on
    #: timeout instead of spinning when the master emits no marker.
    WAIT_SAFE = "wait_safe"


class Replica:
    """A read-only standby."""

    def __init__(self, master: "Database", name: str = "standby") -> None:
        from repro.engine.database import Database
        self.master = master
        self.name = name
        self._latest = Database(EngineConfig())
        self._safe = Database(EngineConfig())
        self._mirror_catalog(self._latest)
        self._mirror_catalog(self._safe)
        self._applied = 0          # records applied to `latest`
        self._safe_applied = 0     # records applied to `safe`
        self._last_safe_point: Optional[int] = None
        # Staleness of serializable reads, observable on the master's
        # metrics registry alongside the engine gauges.
        self.master.obs.metrics.gauge(
            "replica.safe_snapshot_lag", replica=name).set_function(
            lambda: self.safe_snapshot_lag)

    def _mirror_catalog(self, db) -> None:
        for name, rel in self.master.relations().items():
            db.create_table(name, rel.columns)
            for idx in rel.indexes.values():
                if getattr(idx, "spatial", False):
                    kind = "gist"
                elif not idx.ordered:
                    kind = "hash"
                else:
                    kind = "btree"
                db.create_index(name, idx.column, name=idx.name,
                                unique=idx.unique, using=kind)

    # -- log shipping -----------------------------------------------------
    def catch_up(self) -> int:
        """Apply all WAL shipped since the last call; returns the
        number of commit records applied."""
        records = self.master.wal[self._applied:]
        for record in records:
            self._apply(self._latest, record)
            self._applied += 1
            if record.safe_snapshot_marker:
                self._last_safe_point = self._applied
        # Advance the safe state to the newest safe point.
        if self._last_safe_point is not None:
            for record in self.master.wal[self._safe_applied:
                                          self._last_safe_point]:
                self._apply(self._safe, record)
            self._safe_applied = max(self._safe_applied,
                                     self._last_safe_point)
        return len(records)

    @staticmethod
    def _apply(db, record: CommitRecord) -> None:
        session = db.session()
        session.begin()
        for kind, rel_name, old, new in record.changes:
            if kind == "insert":
                session.insert(rel_name, new)
            elif kind == "delete":
                session.delete(rel_name, _whole_row_pred(old))
            elif kind == "update":
                session.update(rel_name, _whole_row_pred(old), new)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown WAL change kind {kind!r}")
        session.commit()

    # -- queries -------------------------------------------------------------
    @property
    def has_safe_snapshot(self) -> bool:
        return self._last_safe_point is not None

    @property
    def safe_snapshot_lag(self) -> int:
        """Commit records between the safe state and the latest state
        (staleness of serializable reads)."""
        return self._applied - self._safe_applied

    def query(self, table: str, where=None, *,
              mode: ReplicaReadMode = ReplicaReadMode.LATEST,
              wait_timeout: float = 1.0) -> List[Dict[str, Any]]:
        """Run a read-only query on the standby.

        ``WAIT_SAFE`` catches up and, when no safe snapshot exists yet,
        polls the master's log for up to ``wait_timeout`` seconds
        before raising a *retryable* :class:`StatementTimeout` (57014)
        -- a master that never goes quiescent emits no marker, and a
        DEFERRABLE query must not spin forever on it.
        """
        if mode is ReplicaReadMode.LATEST:
            db = self._latest
        else:
            if mode is ReplicaReadMode.WAIT_SAFE:
                self._wait_for_safe_snapshot(wait_timeout)
            if not self.has_safe_snapshot:
                raise FeatureNotSupportedError(
                    "cannot use serializable mode on standby: no safe "
                    "snapshot available yet (section 7.2)")
            db = self._safe
        session = db.session()
        return session.select(table, where)

    def _wait_for_safe_snapshot(self, timeout: float) -> None:
        """DEFERRABLE-style wait (section 4.3, on the standby): poll
        the shipped log until a safe-snapshot marker appears, bounded
        by ``timeout`` seconds of wall-clock."""
        self.catch_up()
        if self.has_safe_snapshot:
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            time.sleep(min(0.001, max(timeout, 0.0) / 64 + 1e-6))
            self.catch_up()
            if self.has_safe_snapshot:
                return
        raise StatementTimeout(
            f"canceling statement on standby {self.name!r}: no safe "
            f"snapshot appeared within {timeout:.3f}s (master emitted "
            f"no safe-snapshot marker)")


def _whole_row_pred(row: Dict[str, Any]) -> Predicate:
    from repro.engine.predicate import Func
    items = dict(row)
    return Func(lambda r, items=items: all(r.get(k) == v
                                           for k, v in items.items()),
                description=f"row = {items!r}")
