"""Logical write-ahead-log records shipped to replicas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: (kind, relation name, old row, new row); kind in insert/update/delete.
Change = Tuple[str, str, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]


@dataclass
class CommitRecord:
    """One committed transaction's changes, in commit order.

    ``safe_snapshot_marker`` is the paper's proposed log-stream
    annotation (section 7.2): True when a snapshot taken just after
    this commit is safe (no read/write serializable transaction was
    active on the master), so a replica may serve SERIALIZABLE reads
    from it.
    """

    xid: int
    changes: List[Change] = field(default_factory=list)
    safe_snapshot_marker: bool = False
    #: Byte offset of this commit's frame in the physical WAL
    #: (repro.storage.durable); None when the engine runs in-memory.
    #: Monotonic in commit order, so replicas can use it as a
    #: resume/acknowledge cursor.
    lsn: Optional[int] = None

    def to_event(self) -> Dict[str, Any]:
        """Payload shape shared with the ``wal.ship`` trace event
        (repro.obs.trace), so log-stream dumps and traces line up."""
        return {"xid": self.xid, "changes": len(self.changes),
                "safe_snapshot_marker": self.safe_snapshot_marker}
