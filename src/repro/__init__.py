"""repro: Serializable Snapshot Isolation in PostgreSQL, reproduced.

A from-scratch Python implementation of the system described in
"Serializable Snapshot Isolation in PostgreSQL" (Ports & Grittner,
PVLDB 5(12), 2012): a PostgreSQL-style MVCC engine with SSI as its
SERIALIZABLE isolation level, plus everything the paper's evaluation
needs -- a strict-2PL baseline, benchmark workloads, a deterministic
concurrency simulator, and an offline serializability checker.

Start with :class:`repro.engine.Database`; see README.md and DESIGN.md.
"""

__version__ = "1.0.0"

from repro.config import CostModel, EngineConfig, SSIConfig
from repro.errors import (DeadlockDetected, ReproError, RetryableError,
                          SerializationFailure, WouldBlock)

__all__ = [
    "__version__",
    "EngineConfig",
    "SSIConfig",
    "CostModel",
    "ReproError",
    "RetryableError",
    "SerializationFailure",
    "DeadlockDetected",
    "WouldBlock",
]
