"""Multiversion concurrency control substrate.

PostgreSQL-style transaction IDs, commit log (pg_clog), snapshots, and
tuple visibility rules (paper section 5.1). SSI's conflict detection for
write-before-read conflicts is driven entirely by this machinery
(section 5.2): the visibility check result tells the reader whether the
tuple's creator or deleter is a concurrent transaction.
"""

from repro.mvcc.xid import INVALID_XID, FIRST_XID, XidAllocator
from repro.mvcc.clog import CommitLog, XidStatus
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.visibility import VisibilityResult, tuple_visibility

__all__ = [
    "INVALID_XID",
    "FIRST_XID",
    "XidAllocator",
    "CommitLog",
    "XidStatus",
    "Snapshot",
    "VisibilityResult",
    "tuple_visibility",
]
