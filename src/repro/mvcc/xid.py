"""Transaction ID allocation.

Transaction IDs are monotonically increasing integers. Unlike
PostgreSQL we never wrap around (Python integers are unbounded), so
freezing is unnecessary; everything else follows the PostgreSQL scheme:
xid 0 is invalid, and subtransactions receive their own xids linked to
their parent through the commit log's subtrans map.
"""

from __future__ import annotations

#: Marker for "no transaction" (e.g. a tuple with no deleter).
INVALID_XID = 0

#: First assignable transaction ID. IDs 1 and 2 are reserved the way
#: PostgreSQL reserves bootstrap/frozen xids, purely for familiarity.
FIRST_XID = 3


class XidAllocator:
    """Hands out transaction IDs in increasing order.

    The next unassigned xid doubles as the ``xmax`` bound of new
    snapshots: any xid at or above it must be invisible.
    """

    def __init__(self, start: int = FIRST_XID) -> None:
        self._next = start

    @property
    def next_xid(self) -> int:
        """The xid the next assignment will return (snapshot xmax)."""
        return self._next

    def assign(self) -> int:
        xid = self._next
        self._next += 1
        return xid
