"""Commit log (pg_clog) and subtransaction parent map (pg_subtrans).

Records the final status of every transaction ID. Subtransactions get
their own xids; the engine marks the whole surviving subtree committed
when the top-level transaction commits, and marks a subtree aborted on
ROLLBACK TO SAVEPOINT, so visibility checks reduce to simple lookups.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable

from repro.mvcc.xid import INVALID_XID


class XidStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    COMMITTED = "committed"
    ABORTED = "aborted"


class CommitLog:
    """Status store for transaction IDs.

    Unknown xids are reported IN_PROGRESS; the engine registers each
    xid at assignment, so an unknown xid can only be one that is about
    to be assigned.
    """

    def __init__(self) -> None:
        self._status: Dict[int, XidStatus] = {}
        self._parent: Dict[int, int] = {}

    # -- registration ---------------------------------------------------
    def register(self, xid: int, parent: int = INVALID_XID) -> None:
        """Record a newly-assigned xid as in progress.

        ``parent`` links a subtransaction xid to its immediate parent.
        """
        self._status[xid] = XidStatus.IN_PROGRESS
        if parent != INVALID_XID:
            self._parent[xid] = parent

    def parent_of(self, xid: int) -> int:
        return self._parent.get(xid, INVALID_XID)

    def top_level_of(self, xid: int) -> int:
        """Follow the subtrans chain to the top-level transaction."""
        while xid in self._parent:
            xid = self._parent[xid]
        return xid

    # -- status transitions ----------------------------------------------
    def set_committed(self, xids: Iterable[int]) -> None:
        """Mark a top-level xid and its surviving subxacts committed."""
        for xid in xids:
            self._status[xid] = XidStatus.COMMITTED

    def set_aborted(self, xids: Iterable[int]) -> None:
        for xid in xids:
            self._status[xid] = XidStatus.ABORTED

    # -- durability snapshot (repro.storage.durable) ----------------------
    def entries(self) -> Dict[int, XidStatus]:
        """Every recorded status, for the checkpoint's CLOG segments."""
        return dict(self._status)

    def parents(self) -> Dict[int, int]:
        """The subtrans map, for the checkpoint's CLOG segments."""
        return dict(self._parent)

    def restore(self, statuses: Dict[int, XidStatus],
                parents: Dict[int, int]) -> None:
        """Merge recovered segment contents (REDO base state)."""
        self._status.update(statuses)
        self._parent.update({xid: parent for xid, parent in parents.items()
                             if parent != INVALID_XID})

    # -- queries ----------------------------------------------------------
    def status(self, xid: int) -> XidStatus:
        return self._status.get(xid, XidStatus.IN_PROGRESS)

    def did_commit(self, xid: int) -> bool:
        return self._status.get(xid) is XidStatus.COMMITTED

    def did_abort(self, xid: int) -> bool:
        return self._status.get(xid) is XidStatus.ABORTED

    def in_progress(self, xid: int) -> bool:
        return self.status(xid) is XidStatus.IN_PROGRESS
