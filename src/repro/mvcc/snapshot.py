"""MVCC snapshots.

A snapshot is "the set of transactions whose effects are visible"
(paper section 5.1), represented the PostgreSQL way: a half-open window
``[xmin, xmax)`` plus the set ``xip`` of xids that were still in
progress when the snapshot was taken. A committed xid is visible in the
snapshot iff it is below ``xmax`` and not in ``xip``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.mvcc.clog import CommitLog


@dataclass(frozen=True, slots=True)
class Snapshot:
    """An immutable point-in-time view of the database.

    Attributes:
        xmin: all xids below this had completed when the snapshot was
            taken (lower bound of ``xip``).
        xmax: first xid not yet assigned at snapshot time; any xid at
            or above it is invisible.
        xip: xids (including subtransaction xids) in progress at
            snapshot time; invisible even if they commit later.
    """

    xmin: int
    xmax: int
    xip: FrozenSet[int] = field(default_factory=frozenset)

    def xid_in_progress_at_snapshot(self, xid: int) -> bool:
        """Was ``xid`` still running (or unassigned) at snapshot time?"""
        return xid >= self.xmax or xid in self.xip

    def committed_visible(self, xid: int, clog: CommitLog) -> bool:
        """True iff ``xid`` committed and its effects are in this snapshot."""
        if self.xid_in_progress_at_snapshot(xid):
            return False
        return clog.did_commit(xid)

    def overlaps(self, other: "Snapshot") -> bool:
        """Heuristic used in tests: two snapshots could belong to
        concurrent transactions if their windows intersect."""
        return not (self.xmax <= other.xmin or other.xmax <= self.xmin)
