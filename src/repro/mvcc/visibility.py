"""Tuple visibility under MVCC snapshots (HeapTupleSatisfiesMVCC).

Besides the boolean answer, the result records *why* a tuple is or is
not visible whenever a concurrent transaction is involved. This is
exactly the information SSI mines for write-before-read rw-conflicts
(paper section 5.2):

* a tuple invisible because its creator had not committed when the
  reader took its snapshot -> the reader must precede the creator in
  the serial order (rw-conflict reader -> creator);
* a tuple still visible although it has a deleter, because the deleter
  had not committed at snapshot time -> rw-conflict reader -> deleter.

With ``use_hints`` enabled the checks consult (and lazily set) the
tuple's infomask hint bits: once the commit log has delivered a final
verdict on xmin or xmax it is cached in the tuple header, and repeat
checks answer from the header without touching the CLOG. A hint bit is
only ever set to a status that can never change again, so hinted and
unhinted evaluation always agree; ``hint_counter`` (an obs Counter)
counts the CLOG lookups avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet

from repro.mvcc.clog import CommitLog
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.xid import INVALID_XID


@dataclass(frozen=True)
class TxnView:
    """The reading transaction's own identity.

    Attributes:
        xids: the top-level xid plus all live subtransaction xids.
            (Aborted subtransactions are recorded in the commit log and
            handled there.)
        curcid: current command ID; tuples written by an earlier
            command of this transaction are visible, tuples written by
            the current or a later command are not.
    """

    xids: AbstractSet[int]
    curcid: int


@dataclass(frozen=True)
class VisibilityResult:
    """Outcome of a visibility check, with SSI-relevant classification."""

    visible: bool
    #: Tuple invisible because its creator is concurrent with the
    #: reader (in progress, or committed after the reader's snapshot).
    creator_concurrent: bool = False
    #: Tuple visible but its deleter is concurrent with the reader.
    deleter_concurrent: bool = False
    creator_xid: int = INVALID_XID
    deleter_xid: int = INVALID_XID


#: Shared results for the hint/visibility-map fast paths (the frozen
#: dataclass is immutable, so reuse is safe and skips an allocation on
#: the hottest return paths).
ALL_VISIBLE = VisibilityResult(True)
_INVISIBLE = VisibilityResult(False)


def tuple_visibility(tup, snapshot: Snapshot, view: TxnView,
                     clog: CommitLog, use_hints: bool = False,
                     hint_counter=None) -> VisibilityResult:
    """Evaluate ``tup`` against ``snapshot`` for the transaction ``view``.

    ``tup`` needs attributes ``xmin``, ``cmin``, ``xmax``, ``cmax`` and
    ``xmax_lock_only`` (a FOR UPDATE-style locker stored in xmax does
    not delete the tuple, mirroring HEAP_XMAX_LOCK_ONLY); with
    ``use_hints`` also the four hint-bit attributes.
    """
    xmin = tup.xmin

    if use_hints:
        # --- creator, hinted ------------------------------------------
        if tup.xmin_aborted:
            # Dead on arrival (includes our own aborted subtransactions,
            # whose abort is just as final).
            if hint_counter is not None:
                hint_counter.inc()
            return _INVISIBLE
        if tup.xmin_committed:
            # A committed xmin cannot be ours (our xids are in progress
            # until we finish), so only the snapshot window matters.
            if hint_counter is not None:
                hint_counter.inc()
            if snapshot.xid_in_progress_at_snapshot(xmin):
                return VisibilityResult(False, creator_concurrent=True,
                                        creator_xid=xmin)
            return _check_deleter(tup, snapshot, view, clog,
                                  creator_mine=False, use_hints=True,
                                  hint_counter=hint_counter)

    # --- creator -------------------------------------------------------
    if clog.did_abort(xmin):
        # Dead on arrival (includes our own aborted subtransactions).
        if use_hints:
            tup.xmin_aborted = True
        return VisibilityResult(False)

    if xmin in view.xids:
        if tup.cmin >= view.curcid:
            # Inserted by the current command: invisible to it
            # (Halloween protection).
            return VisibilityResult(False)
        return _check_deleter(tup, snapshot, view, clog, creator_mine=True,
                              use_hints=use_hints, hint_counter=hint_counter)

    if not snapshot.committed_visible(xmin, clog):
        # Creator still in progress, or committed after our snapshot:
        # a concurrent writer whose update we are not seeing.
        if use_hints and clog.did_commit(xmin):
            tup.xmin_committed = True
        return VisibilityResult(False, creator_concurrent=True,
                                creator_xid=xmin)

    if use_hints:
        tup.xmin_committed = True
    return _check_deleter(tup, snapshot, view, clog, creator_mine=False,
                          use_hints=use_hints, hint_counter=hint_counter)


def _check_deleter(tup, snapshot: Snapshot, view: TxnView, clog: CommitLog,
                   creator_mine: bool, use_hints: bool = False,
                   hint_counter=None) -> VisibilityResult:
    xmax = tup.xmax
    if xmax == INVALID_XID or tup.xmax_lock_only:
        return ALL_VISIBLE if use_hints else VisibilityResult(True)

    if use_hints:
        if tup.xmax_aborted:
            if hint_counter is not None:
                hint_counter.inc()
            return ALL_VISIBLE
        if tup.xmax_committed:
            # A committed xmax cannot be ours while we are running.
            if hint_counter is not None:
                hint_counter.inc()
            if snapshot.xid_in_progress_at_snapshot(xmax):
                return VisibilityResult(True, deleter_concurrent=True,
                                        deleter_xid=xmax)
            return _INVISIBLE

    if clog.did_abort(xmax):
        if use_hints:
            tup.xmax_aborted = True
        return VisibilityResult(True)

    if xmax in view.xids:
        if tup.cmax >= view.curcid:
            # Being deleted by the current command; still visible to it.
            return VisibilityResult(True)
        return VisibilityResult(False)

    if snapshot.committed_visible(xmax, clog):
        if use_hints:
            tup.xmax_committed = True
        return VisibilityResult(False)

    # Deleter in progress or committed after our snapshot: we still see
    # the tuple, and the deleter is a concurrent writer.
    if use_hints and clog.did_commit(xmax):
        tup.xmax_committed = True
    return VisibilityResult(True, deleter_concurrent=True, deleter_xid=xmax)


def page_all_visible(tuples, clog: CommitLog,
                     horizon_xmin: "int | None" = None) -> bool:
    """May a heap page's all-visible bit be set over ``tuples``?

    True when every tuple is visible to every current and future
    snapshot: creator committed (below ``horizon_xmin``, when given --
    VACUUM passes the horizon to guarantee no *current* snapshot
    predates the commit; the sanitizer re-checks later with no horizon,
    since the bit only needs the timeless part to stay sound) and no
    deleter except an aborted or lock-only one. Lives here so the heap
    never reads raw CLOG status itself (see repro.analysis, CLOG001).
    """
    for tup in tuples:
        if not clog.did_commit(tup.xmin):
            return False
        if horizon_xmin is not None and tup.xmin >= horizon_xmin:
            return False
        if not (tup.xmax == INVALID_XID or tup.xmax_lock_only
                or clog.did_abort(tup.xmax)):
            return False
    return True


def tuple_is_dead(tup, horizon_xmin: int, clog: CommitLog, *,
                  use_hints: bool = False, hint_counter=None) -> bool:
    """Can VACUUM remove this tuple?

    True when no current or future snapshot can see it: its creator
    aborted, or its deleter committed before every active transaction's
    snapshot window (``horizon_xmin`` = min over active snapshots of
    ``xmin``).
    """
    if use_hints and tup.xmin_aborted:
        if hint_counter is not None:
            hint_counter.inc()
        return True
    if clog.did_abort(tup.xmin):
        if use_hints:
            tup.xmin_aborted = True
        return True
    if tup.xmax == INVALID_XID or tup.xmax_lock_only:
        return False
    if use_hints:
        if tup.xmax_aborted:
            if hint_counter is not None:
                hint_counter.inc()
            return False
        if tup.xmax_committed:
            if hint_counter is not None:
                hint_counter.inc()
            return tup.xmax < horizon_xmin
    if not clog.did_commit(tup.xmax):
        if use_hints and clog.did_abort(tup.xmax):
            tup.xmax_aborted = True
        return False
    if use_hints:
        tup.xmax_committed = True
    return tup.xmax < horizon_xmin
