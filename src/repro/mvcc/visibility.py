"""Tuple visibility under MVCC snapshots (HeapTupleSatisfiesMVCC).

Besides the boolean answer, the result records *why* a tuple is or is
not visible whenever a concurrent transaction is involved. This is
exactly the information SSI mines for write-before-read rw-conflicts
(paper section 5.2):

* a tuple invisible because its creator had not committed when the
  reader took its snapshot -> the reader must precede the creator in
  the serial order (rw-conflict reader -> creator);
* a tuple still visible although it has a deleter, because the deleter
  had not committed at snapshot time -> rw-conflict reader -> deleter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet

from repro.mvcc.clog import CommitLog
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.xid import INVALID_XID


@dataclass(frozen=True)
class TxnView:
    """The reading transaction's own identity.

    Attributes:
        xids: the top-level xid plus all live subtransaction xids.
            (Aborted subtransactions are recorded in the commit log and
            handled there.)
        curcid: current command ID; tuples written by an earlier
            command of this transaction are visible, tuples written by
            the current or a later command are not.
    """

    xids: AbstractSet[int]
    curcid: int


@dataclass(frozen=True)
class VisibilityResult:
    """Outcome of a visibility check, with SSI-relevant classification."""

    visible: bool
    #: Tuple invisible because its creator is concurrent with the
    #: reader (in progress, or committed after the reader's snapshot).
    creator_concurrent: bool = False
    #: Tuple visible but its deleter is concurrent with the reader.
    deleter_concurrent: bool = False
    creator_xid: int = INVALID_XID
    deleter_xid: int = INVALID_XID


def tuple_visibility(tup, snapshot: Snapshot, view: TxnView,
                     clog: CommitLog) -> VisibilityResult:
    """Evaluate ``tup`` against ``snapshot`` for the transaction ``view``.

    ``tup`` needs attributes ``xmin``, ``cmin``, ``xmax``, ``cmax`` and
    ``xmax_lock_only`` (a FOR UPDATE-style locker stored in xmax does
    not delete the tuple, mirroring HEAP_XMAX_LOCK_ONLY).
    """
    xmin, xmax = tup.xmin, tup.xmax

    # --- creator -------------------------------------------------------
    if clog.did_abort(xmin):
        # Dead on arrival (includes our own aborted subtransactions).
        return VisibilityResult(False)

    if xmin in view.xids:
        if tup.cmin >= view.curcid:
            # Inserted by the current command: invisible to it
            # (Halloween protection).
            return VisibilityResult(False)
        return _check_deleter(tup, snapshot, view, clog, creator_mine=True)

    if not snapshot.committed_visible(xmin, clog):
        # Creator still in progress, or committed after our snapshot:
        # a concurrent writer whose update we are not seeing.
        return VisibilityResult(False, creator_concurrent=True,
                                creator_xid=xmin)

    return _check_deleter(tup, snapshot, view, clog, creator_mine=False)


def _check_deleter(tup, snapshot: Snapshot, view: TxnView, clog: CommitLog,
                   creator_mine: bool) -> VisibilityResult:
    xmax = tup.xmax
    if xmax == INVALID_XID or tup.xmax_lock_only:
        return VisibilityResult(True)

    if clog.did_abort(xmax):
        return VisibilityResult(True)

    if xmax in view.xids:
        if tup.cmax >= view.curcid:
            # Being deleted by the current command; still visible to it.
            return VisibilityResult(True)
        return VisibilityResult(False)

    if snapshot.committed_visible(xmax, clog):
        return VisibilityResult(False)

    # Deleter in progress or committed after our snapshot: we still see
    # the tuple, and the deleter is a concurrent writer.
    return VisibilityResult(True, deleter_concurrent=True, deleter_xid=xmax)


def tuple_is_dead(tup, horizon_xmin: int, clog: CommitLog) -> bool:
    """Can VACUUM remove this tuple?

    True when no current or future snapshot can see it: its creator
    aborted, or its deleter committed before every active transaction's
    snapshot window (``horizon_xmin`` = min over active snapshots of
    ``xmin``).
    """
    if clog.did_abort(tup.xmin):
        return True
    if tup.xmax == INVALID_XID or tup.xmax_lock_only:
        return False
    if not clog.did_commit(tup.xmax):
        return False
    return tup.xmax < horizon_xmin
