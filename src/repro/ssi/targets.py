"""Predicate-lock targets.

SIREAD locks are keyed by tags over a granularity hierarchy
(section 5.2.1): heap relation > heap page > heap tuple, plus index
relation > index page for index-gap (phantom) locking. Page and tuple
targets are identified by *physical* location, which is why DDL that
moves tuples must promote them (see SIReadLockManager.promote_*).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.storage.tuple import TID

Target = Tuple


def rel_target(rel_oid: int) -> Target:
    return ("r", rel_oid)


def page_target(rel_oid: int, page_no: int) -> Target:
    return ("p", rel_oid, page_no)


def tuple_target(rel_oid: int, tid: TID) -> Target:
    return ("t", rel_oid, tid.page, tid.slot)


def index_rel_target(index_oid: int) -> Target:
    return ("ir", index_oid)


def index_page_target(index_oid: int, page_no: int) -> Target:
    return ("ip", index_oid, page_no)


def index_key_target(index_oid: int, key) -> Target:
    """Next-key locking: one target per key value (including the key
    bounding a scanned gap)."""
    return ("ik", index_oid, key)


def index_inf_target(index_oid: int) -> Target:
    """The virtual +infinity key: guards the gap beyond the last key."""
    return ("ik+", index_oid)


def heap_write_targets(rel_oid: int, tid: TID) -> List[Target]:
    """Targets a heap write must check for SIREAD locks, coarsest first.

    Checking coarsest-to-finest is what lets the implementation skip
    intention locks entirely (section 5.2.1).
    """
    return [rel_target(rel_oid),
            page_target(rel_oid, tid.page),
            tuple_target(rel_oid, tid)]


def index_insert_targets(index_oid: int, leaf_pages: List[int]) -> List[Target]:
    """Targets an index insert must check, coarsest first."""
    targets: List[Target] = [index_rel_target(index_oid)]
    targets.extend(index_page_target(index_oid, p) for p in leaf_pages)
    return targets
