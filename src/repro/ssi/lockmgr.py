"""The SIREAD lock manager (paper section 5.2.1).

A lock manager built specifically for SSI read dependencies:

* stores only SIREAD locks, hence it cannot block and needs no
  deadlock detection;
* multigranularity (relation / page / tuple, and index relation /
  index page) **without intention locks**: writers simply check every
  granularity, coarsest to finest;
* supports granularity promotion to bound memory (section 6,
  technique 2): too many tuple locks on a page collapse into a page
  lock, too many page locks on a relation collapse into a relation
  lock;
* handles situations a strict-2PL lock manager never sees: SIREAD
  locks survive commit, so DDL that moves tuples (table rewrites,
  index drops) must *promote* surviving locks rather than being blocked
  by them, and B+-tree page splits must copy gap locks to the new page;
* consolidates locks of summarized committed transactions onto a
  single dummy holder, each tagged with the newest holder's commit
  sequence number (section 6.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.config import SSIConfig
from repro.errors import CapacityExceededError
from repro.ssi.sxact import SerializableXact
from repro.ssi.targets import (Target, index_inf_target, index_key_target,
                               index_page_target, index_rel_target,
                               page_target, rel_target, tuple_target)
from repro.storage.tuple import TID


def _parents(target: Target) -> List[Target]:
    """Coarser targets covering ``target``, coarsest first."""
    kind = target[0]
    if kind == "t":
        _, oid, page, _slot = target
        return [rel_target(oid), page_target(oid, page)]
    if kind == "p":
        _, oid, _page = target
        return [rel_target(oid)]
    if kind in ("ip", "ik", "ik+"):
        oid = target[1]
        return [index_rel_target(oid)]
    return []


def _group_key(target: Target) -> Optional[Target]:
    """The promotion group a target belongs to (its immediate parent)."""
    parents = _parents(target)
    return parents[-1] if parents else None


class SIReadLockManager:
    """Shared SIREAD lock table."""

    def __init__(self, config: SSIConfig) -> None:
        self._config = config
        #: target -> set of holders.
        self._locks: Dict[Target, Set[SerializableXact]] = {}  # repro: guarded-by(ENGINE)
        #: per-holder reverse index.
        self._held: Dict[SerializableXact, Set[Target]] = {}  # repro: guarded-by(ENGINE)
        #: fine-grained targets per (holder, parent target), for
        #: promotion bookkeeping.
        self._children: Dict[Tuple[SerializableXact, Target], Set[Target]] = {}  # repro: guarded-by(ENGINE)
        #: locks of summarized committed transactions: target -> newest
        #: holder's commit sequence number.
        self._summary: Dict[Target, float] = {}  # repro: guarded-by(ENGINE)
        #: coverage cache for the reader fast path: per holder, the
        #: relation oids and (rel oid, page) pairs it holds coarse
        #: (relation/page granularity) heap SIREAD locks on. Kept in
        #: sync by _add/_remove, so it is exact, not a heuristic.
        self._cover: Dict[SerializableXact,  # repro: guarded-by(ENGINE)
                          Tuple[Set[int], Set[Tuple[int, int]]]] = {}
        #: Work-unit counter consumed by the simulator's cost model.
        self.work_units = 0  # repro: guarded-by(ENGINE)
        #: High-water mark of the lock table (memory-bounding benches).
        self.peak_lock_count = 0  # repro: guarded-by(ENGINE)

    # -- size accounting --------------------------------------------------
    @property
    def lock_count(self) -> int:
        return sum(len(h) for h in self._locks.values()) + len(self._summary)

    def _check_capacity(self) -> None:
        count = self.lock_count
        if count > self.peak_lock_count:
            self.peak_lock_count = count
        if count > self._config.max_predicate_locks:
            raise CapacityExceededError(
                "predicate lock table exhausted even after promotion; "
                "raise SSIConfig.max_predicate_locks")

    # -- primitive add/remove ------------------------------------------------
    def holds(self, sx: SerializableXact, target: Target) -> bool:
        return target in self._held.get(sx, ())

    def covers_read(self, sx: SerializableXact, rel_oid: int,
                    page_no: int) -> bool:
        """Does ``sx`` already hold a relation- or page-granularity
        SIREAD lock covering ``(rel_oid, page_no)``?

        O(1) via the coverage cache; used by the reader fast path to
        skip acquire_tuple entirely (which would dedupe-and-return
        anyway). Deliberately does not touch ``work_units`` -- the whole
        point is to model the avoided work.
        """
        cover = self._cover.get(sx)
        return cover is not None and (rel_oid in cover[0]
                                      or (rel_oid, page_no) in cover[1])

    def _add(self, sx: SerializableXact, target: Target) -> None:
        self.work_units += 1
        self._locks.setdefault(target, set()).add(sx)
        self._held.setdefault(sx, set()).add(target)
        kind = target[0]
        if kind == "r" or kind == "p":
            cover = self._cover.get(sx)
            if cover is None:
                cover = (set(), set())
                self._cover[sx] = cover
            if kind == "r":
                cover[0].add(target[1])
            else:
                cover[1].add((target[1], target[2]))
        group = _group_key(target)
        if group is not None:
            self._children.setdefault((sx, group), set()).add(target)
        self._check_capacity()

    def _remove(self, sx: SerializableXact, target: Target) -> None:
        self.work_units += 1
        holders = self._locks.get(target)
        if holders is not None:
            holders.discard(sx)
            if not holders:
                self._locks.pop(target, None)
        held = self._held.get(sx)
        if held is not None:
            held.discard(target)
            if not held:
                self._held.pop(sx, None)
        kind = target[0]
        if kind == "r" or kind == "p":
            cover = self._cover.get(sx)
            if cover is not None:
                if kind == "r":
                    cover[0].discard(target[1])
                else:
                    cover[1].discard((target[1], target[2]))
                if not cover[0] and not cover[1]:
                    self._cover.pop(sx, None)
        group = _group_key(target)
        if group is not None:
            kids = self._children.get((sx, group))
            if kids is not None:
                kids.discard(target)
                if not kids:
                    self._children.pop((sx, group), None)

    def _remove_group(self, sx: SerializableXact, group: Target) -> None:
        for child in list(self._children.get((sx, group), ())):
            self._remove(sx, child)

    # -- acquisition (readers) ---------------------------------------------
    def acquire_tuple(self, sx: SerializableXact, rel_oid: int,
                      tid: TID) -> None:
        """SIREAD-lock one heap tuple, with promotion to page level."""
        target = tuple_target(rel_oid, tid)
        page = page_target(rel_oid, tid.page)
        if (self.holds(sx, target) or self.holds(sx, page)
                or self.holds(sx, rel_target(rel_oid))):
            self.work_units += 1
            return
        self._add(sx, target)
        kids = self._children.get((sx, page), ())
        if len(kids) > self._config.max_pred_locks_per_page:
            self._remove_group(sx, page)
            self.acquire_page(sx, rel_oid, tid.page)

    def acquire_page(self, sx: SerializableXact, rel_oid: int,
                     page_no: int) -> None:
        """SIREAD-lock a heap page, with promotion to relation level."""
        target = page_target(rel_oid, page_no)
        rel = rel_target(rel_oid)
        if self.holds(sx, target) or self.holds(sx, rel):
            self.work_units += 1
            return
        self._remove_group(sx, target)  # subsume tuple locks on the page
        self._add(sx, target)
        pages = self._children.get((sx, rel), ())
        if len(pages) > self._config.max_pred_locks_per_relation:
            self.acquire_relation(sx, rel_oid)

    def acquire_relation(self, sx: SerializableXact, rel_oid: int) -> None:
        """SIREAD-lock a whole relation (sequential scans, promotions)."""
        rel = rel_target(rel_oid)
        if self.holds(sx, rel):
            self.work_units += 1
            return
        # Subsume all finer-granularity locks under this relation --
        # page locks and tuple locks alike (tuple locks may sit on
        # pages we hold no page lock for).
        fine = [t for t in self._held.get(sx, ())
                if t[0] in ("t", "p") and t[1] == rel_oid]
        for target in fine:
            self._remove(sx, target)
        self._add(sx, rel)

    def acquire_index_page(self, sx: SerializableXact, index_oid: int,
                           page_no: int) -> None:
        """Gap lock on a B+-tree leaf page (phantom detection)."""
        target = index_page_target(index_oid, page_no)
        rel = index_rel_target(index_oid)
        if self.holds(sx, target) or self.holds(sx, rel):
            self.work_units += 1
            return
        self._add(sx, target)
        pages = self._children.get((sx, rel), ())
        if len(pages) > self._config.max_pred_locks_per_relation:
            self.acquire_index_relation(sx, index_oid)

    def acquire_index_key(self, sx: SerializableXact, index_oid: int,
                          key) -> None:
        """Next-key lock on one key value (including gap guards)."""
        target = index_key_target(index_oid, key)
        rel = index_rel_target(index_oid)
        if self.holds(sx, target) or self.holds(sx, rel):
            self.work_units += 1
            return
        self._add(sx, target)
        fine = self._children.get((sx, rel), ())
        if len(fine) > self._config.max_pred_locks_per_relation:
            self.acquire_index_relation(sx, index_oid)

    def acquire_index_infinity(self, sx: SerializableXact,
                               index_oid: int) -> None:
        """Lock the virtual +infinity key: guards the gap beyond the
        last key (a scan that ran off the right edge)."""
        target = index_inf_target(index_oid)
        rel = index_rel_target(index_oid)
        if self.holds(sx, target) or self.holds(sx, rel):
            self.work_units += 1
            return
        self._add(sx, target)

    def acquire_index_relation(self, sx: SerializableXact,
                               index_oid: int) -> None:
        """Whole-index lock: promotion target, and the fallback for
        access methods without predicate-lock support (section 7.4)."""
        rel = index_rel_target(index_oid)
        if self.holds(sx, rel):
            self.work_units += 1
            return
        self._remove_group(sx, rel)
        self._add(sx, rel)

    # -- conflict checking (writers) -------------------------------------------
    def holders_of(self, targets: Iterable[Target]) -> Tuple[
            Set[SerializableXact], Optional[float]]:
        """All SIREAD holders across ``targets`` plus, if any target is
        covered by summarized locks, the newest summarized commit seq.

        Callers pass targets coarsest-to-finest (section 5.2.1's rule
        for safely skipping intention locks).
        """
        holders: Set[SerializableXact] = set()
        summary_seq: Optional[float] = None
        for target in targets:
            self.work_units += 1
            holders.update(self._locks.get(target, ()))
            seq = self._summary.get(target)
            if seq is not None:
                summary_seq = seq if summary_seq is None else max(summary_seq, seq)
        return holders, summary_seq

    # -- own-write optimization (section 7.3) -----------------------------------
    def drop_tuple_lock(self, sx: SerializableXact, rel_oid: int,
                        tid: TID) -> None:
        """Drop our own tuple-granularity SIREAD lock on a tuple we are
        writing: the write lock in the tuple header subsumes it. Only
        exact tuple locks are dropped; page/relation locks may cover
        other tuples."""
        target = tuple_target(rel_oid, tid)
        if self.holds(sx, target):
            self._remove(sx, target)

    # -- crash recovery (section 7.1) --------------------------------------------
    def restore_recovered(self, sx: SerializableXact,
                          targets: Iterable[Target]) -> None:
        """Re-install the persisted SIREAD locks of a prepared
        transaction after crash recovery. Public so recovery never
        reaches into the private lock tables (which would bypass the
        coverage-cache and promotion bookkeeping _add maintains)."""
        for target in targets:
            if not self.holds(sx, target):
                self._add(sx, target)

    # -- release -------------------------------------------------------------------
    def release_all(self, sx: SerializableXact) -> None:
        for target in list(self._held.get(sx, ())):
            self._remove(sx, target)

    # -- structural maintenance -------------------------------------------------
    def page_split(self, index_oid: int, old_page: int, new_page: int) -> None:
        """Copy predicate locks from a split B+-tree page to its new
        right sibling, so gap locks keep covering the moved keys."""
        old = index_page_target(index_oid, old_page)
        new = index_page_target(index_oid, new_page)
        for sx in list(self._locks.get(old, ())):
            if not self.holds(sx, new):
                self._add(sx, new)
        if old in self._summary:
            self._summary[new] = max(self._summary.get(new, 0.0),
                                     self._summary[old])

    def promote_for_rewrite(self, heap_oid: int,
                            index_oids: Iterable[int]) -> None:
        """A table rewrite (CLUSTER / rewriting ALTER TABLE) moved
        tuples: physical page/tuple targets on the heap and its indexes
        are invalid, so promote every holder to a heap-relation lock
        (section 5.2.1)."""
        idx_set = set(index_oids)

        def affected(target: Target) -> bool:
            kind = target[0]
            if kind in ("t", "p"):
                return target[1] == heap_oid
            if kind in ("ip", "ir", "ik", "ik+"):
                return target[1] in idx_set
            return False

        for target in [t for t in self._locks if affected(t)]:
            for sx in list(self._locks.get(target, ())):
                self._remove(sx, target)
                if not self.holds(sx, rel_target(heap_oid)):
                    self._add(sx, rel_target(heap_oid))
        for target in [t for t in self._summary if affected(t)]:
            seq = self._summary.pop(target)
            heap = rel_target(heap_oid)
            self._summary[heap] = max(self._summary.get(heap, 0.0), seq)

    def transfer_index_to_heap(self, index_oid: int, heap_oid: int) -> None:
        """DROP INDEX: index-gap locks can no longer detect conflicts
        with predicate reads, so replace them with a relation-level
        lock on the associated heap (section 5.2.1)."""
        heap = rel_target(heap_oid)
        doomed_targets = [t for t in self._locks
                          if t[0] in ("ip", "ir", "ik", "ik+")
                          and t[1] == index_oid]
        for target in doomed_targets:
            for sx in list(self._locks.get(target, ())):
                self._remove(sx, target)
                if not self.holds(sx, heap):
                    self._add(sx, heap)
        for target in [t for t in self._summary
                       if t[0] in ("ip", "ir", "ik", "ik+")
                       and t[1] == index_oid]:
            seq = self._summary.pop(target)
            self._summary[heap] = max(self._summary.get(heap, 0.0), seq)

    # -- summarization support (section 6.2) ------------------------------------
    def transfer_to_summary(self, sx: SerializableXact,
                            commit_seq: float) -> None:
        """Reassign all of ``sx``'s SIREAD locks to the dummy
        OldCommittedSxact, each recording the newest commit_seq."""
        for target in list(self._held.get(sx, ())):
            self._remove(sx, target)
            self._summary[target] = max(self._summary.get(target, 0.0),
                                        commit_seq)
            self.work_units += 1

    def cleanup_summary(self, min_active_snapshot_seq: float) -> int:
        """Drop summarized locks whose newest holder committed before
        every active transaction's snapshot; returns how many."""
        stale = [t for t, seq in self._summary.items()
                 if seq <= min_active_snapshot_seq]
        for target in stale:
            del self._summary[target]
        self.work_units += len(stale)
        return len(stale)

    # -- introspection ----------------------------------------------------------
    def iter_locks(self):
        """Public iteration over live SIREAD locks: (target, holder)
        pairs for real holders, then (target, None, commit_seq) triples
        rendered as dicts for the summarized dummy holder. Replaces
        reaching into the private ``_locks``."""
        for target, holders in self._locks.items():
            for holder in holders:
                yield {"target": target, "holder": holder,
                       "summary_commit_seq": None}
        for target, seq in self._summary.items():
            yield {"target": target, "holder": None,
                   "summary_commit_seq": seq}

    def targets_held(self, sx: SerializableXact) -> Set[Target]:
        return set(self._held.get(sx, ()))

    def summary_targets(self) -> Dict[Target, float]:
        return dict(self._summary)
