"""SerializableXact: per-transaction SSI state (paper section 5.3).

PostgreSQL 9.1 chose to keep "a list of all rw-antidependencies in or
out for each transaction" -- not single-bit flags (original SSI paper)
nor the full graph (PSSI) -- because pointers are needed for the
commit-ordering optimization, the read-only optimizations, and for
removing conflicts when a transaction aborts. This class follows that
choice; the flag-only variant is available for the ablation benchmark
via SSIConfig.conflict_tracking = "flags".
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Set

from repro.mvcc.snapshot import Snapshot

#: Commit sequence number stand-in for "not committed".
INFINITE_SEQ = float("inf")


class DoomInfo(NamedTuple):
    """The dangerous structure that doomed a transaction, retained so
    the eventual SerializationFailure (raised at the victim's next
    operation or commit) can carry structured fields and the
    post-mortem explainer (repro.obs.postmortem) can name the
    participants after the fact."""

    t1_xid: Optional[int]       # None when T1 was a summarized xact
    pivot_xid: Optional[int]
    t3_xid: Optional[int]       # None when only T3's seq survived
    t3_seq: Optional[float]
    rule: Optional[str]         # commit_order | ro_snapshot | basic | flags


class SerializableXact:
    """SSI bookkeeping for one top-level serializable transaction."""

    __slots__ = (
        "xid", "snapshot", "snapshot_seq", "declared_read_only",
        "deferrable", "in_conflicts", "out_conflicts",
        "earliest_out_commit_seq", "summary_in_max_seq",
        "summary_conflict_out", "commit_seq", "prepared", "committed",
        "aborted", "doomed", "wrote_data", "ro_safe", "ro_unsafe",
        "possible_unsafe_conflicts", "watching_ros", "flag_conflict_in",
        "flag_conflict_out", "locks_released", "sub_xids", "doom_info",
        "conflict_out_memo",
    )

    def __init__(self, xid: int, snapshot: Snapshot, snapshot_seq: int,
                 read_only: bool = False, deferrable: bool = False) -> None:
        self.xid = xid
        self.snapshot = snapshot
        #: Commit sequence number of the last transaction to commit
        #: before this transaction took its snapshot. "T3 committed
        #: before T1's snapshot" (Theorem 3) <=> T3.commit_seq <= this.
        self.snapshot_seq = snapshot_seq
        self.declared_read_only = read_only
        self.deferrable = deferrable

        #: Transactions with an rw-antidependency edge pointing at us
        #: (they read something we wrote: T -> self).
        self.in_conflicts: Set["SerializableXact"] = set()
        #: Transactions we have an edge to (we read, they wrote).
        self.out_conflicts: Set["SerializableXact"] = set()
        #: min commit_seq over committed out-neighbours, including ones
        #: whose nodes were freed or summarized (section 6.1: "the
        #: commit sequence number of the earliest committed transaction
        #: to which it has a conflict out").
        self.earliest_out_commit_seq: float = INFINITE_SEQ
        #: Conservative stand-in for in-edges from summarized committed
        #: transactions (SXACT_FLAG_SUMMARY_CONFLICT_IN): the largest
        #: commit_seq among them.
        self.summary_in_max_seq: Optional[float] = None
        #: True once this transaction has a conflict out recorded only
        #: in summary form (SXACT_FLAG_SUMMARY_CONFLICT_OUT).
        self.summary_conflict_out = False

        self.commit_seq: Optional[int] = None
        self.prepared = False
        self.committed = False
        self.aborted = False
        #: Marked by another session's conflict resolution; this
        #: transaction must fail at its next operation or commit
        #: (PostgreSQL's SXACT_FLAG_DOOMED; safe-retry rules 5.4).
        self.doomed = False
        #: Why we were doomed (DoomInfo), for the structured error.
        self.doom_info: Optional[DoomInfo] = None
        self.wrote_data = False

        # -- read-only / safe snapshot state (section 4.2) -------------
        self.ro_safe = False
        self.ro_unsafe = False
        #: For a READ ONLY transaction: concurrent read/write
        #: transactions that could still make this snapshot unsafe.
        self.possible_unsafe_conflicts: Set["SerializableXact"] = set()
        #: For a read/write transaction: READ ONLY transactions whose
        #: snapshot safety depends on how we commit.
        self.watching_ros: Set["SerializableXact"] = set()

        # -- flag-only tracking mode (ablation) --------------------------
        self.flag_conflict_in = False
        self.flag_conflict_out = False

        #: Writer xids already routed through _conflict_out_to_xid for
        #: this reader (fast-path memo; see SSIConfig.siread_fast_path).
        self.conflict_out_memo: Set[int] = set()
        #: SIREAD locks already dropped by post-commit cleanup.
        self.locks_released = False
        #: Subtransaction xids (for old_serxid registration on summary).
        self.sub_xids: Set[int] = set()

    # -- derived state ---------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.committed or self.aborted

    @property
    def cseq(self) -> float:
        """Commit sequence number, or +infinity while uncommitted."""
        return self.commit_seq if self.commit_seq is not None else INFINITE_SEQ

    def is_effectively_read_only(self) -> bool:
        """Theorem 3's notion: declared READ ONLY, or committed without
        modifying any data (section 4.1)."""
        if self.declared_read_only:
            return True
        return self.committed and not self.wrote_data

    def all_xids(self) -> Set[int]:
        return {self.xid} | self.sub_xids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("committed" if self.committed else
                 "aborted" if self.aborted else
                 "prepared" if self.prepared else "active")
        ro = " RO" if self.declared_read_only else ""
        doomed = " DOOMED" if self.doomed else ""
        return f"<SXact {self.xid} {state}{ro}{doomed}>"


class SummaryPseudoXact:
    """Stand-in participant for a summarized committed transaction.

    Summarization (section 6.2) discards which transaction held a
    SIREAD lock or an edge, keeping only a commit sequence number; the
    dangerous-structure conditions only need that number plus the fact
    that it committed. Conservative defaults: not read-only, cannot be
    chosen as an abort victim.
    """

    __slots__ = ("commit_seq",)

    committed = True
    prepared = False
    aborted = False
    declared_read_only = False
    snapshot_seq = -1

    def __init__(self, commit_seq: float) -> None:
        self.commit_seq = commit_seq

    @property
    def cseq(self) -> float:
        return self.commit_seq

    def is_effectively_read_only(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SummaryXact cseq={self.commit_seq}>"
