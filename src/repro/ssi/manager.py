"""SSI conflict detection, tracking, and resolution.

Implements sections 3-6 of the paper:

* rw-antidependency detection from MVCC visibility data (write before
  read) and from the SIREAD lock manager (read before write),
  section 5.2;
* full in/out conflict lists per transaction, section 5.3;
* dangerous-structure checks ``T1 -rw-> T2 -rw-> T3`` with the
  commit-ordering optimization (T3 must be the first of the three to
  commit, section 3.3.1) and the read-only snapshot-ordering rule
  (if T1 is read-only, T3 must have committed before T1's snapshot,
  Theorem 3 / section 4.1);
* safe-retry victim selection (section 5.4): prefer aborting the pivot
  T2; transactions in other sessions are marked DOOMED and fail at
  their next operation or commit, mirroring PostgreSQL;
* safe snapshots for read-only transactions (section 4.2);
* memory mitigation (section 6): aggressive cleanup of committed
  transactions and summarization into a dummy OldCommittedSxact plus
  an "on-disk" old-serxid table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.config import SSIConfig
from repro.errors import AbortCause, SerializationFailure
from repro.mvcc.clog import CommitLog
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.visibility import VisibilityResult
from repro.obs import Observability, StatsView, install_counter_properties
from repro.ssi.lockmgr import SIReadLockManager
from repro.ssi.sxact import (INFINITE_SEQ, DoomInfo, SerializableXact,
                             SummaryPseudoXact)
from repro.ssi.targets import (heap_write_targets, index_inf_target,
                               index_insert_targets, index_key_target,
                               index_rel_target, tuple_target)
from repro.storage.tuple import TID

Participant = Union[SerializableXact, SummaryPseudoXact]


class SSIStats(StatsView):
    """Counters exposed for benchmarks and tests.

    A thin attribute view over ``ssi.*`` registry counters (repro.obs):
    the attribute API is unchanged, but snapshots/diffs and the
    benchmark reporter see the same numbers."""

    _PREFIX = "ssi."
    _FIELDS = ("conflicts_flagged", "dangerous_structures", "doomed",
               "immediate_aborts", "safe_snapshots", "unsafe_snapshots",
               "summarized", "committed", "aborted")


install_counter_properties(SSIStats)


class SSIManager:
    """Shared SSI state for one database instance."""

    def __init__(self, config: SSIConfig, clog: CommitLog,
                 obs: Optional[Observability] = None) -> None:
        self.config = config
        self.clog = clog
        self.obs = obs if obs is not None else Observability()
        self.lockmgr = SIReadLockManager(config)
        #: Every live sxact, keyed by each of its xids (top + subs).
        self._by_xid: Dict[int, SerializableXact] = {}  # repro: guarded-by(ENGINE)
        self._active: Set[SerializableXact] = set()  # repro: guarded-by(ENGINE)
        #: Committed sxacts retained for conflict checking, oldest first.
        self._committed: List[SerializableXact] = []  # repro: guarded-by(ENGINE)
        #: Summarized committed transactions: xid -> (commit_seq,
        #: earliest committed out-conflict commit_seq or None). Stands
        #: in for PostgreSQL's SLRU-backed OldSerXid log, which made the
        #: table "effectively unlimited" (section 6.2); a plain dict has
        #: the same observable behaviour.
        self._old_serxid: Dict[int, Tuple[float, Optional[float]]] = {}  # repro: guarded-by(ENGINE)
        self._commit_counter = 0  # repro: guarded-by(ENGINE)
        self._own_work = 0  # repro: guarded-by(ENGINE)
        self.stats = SSIStats(self.obs.metrics)
        self._tracer = self.obs.tracer
        #: Reader fast path (SSIConfig.siread_fast_path): disabled while
        #: a tracer is installed so per-tuple read events keep appearing
        #: in traces -- the fast path is a pure shortcut either way.
        self._read_fast_path = (bool(config.siread_fast_path)
                                and self._tracer is None)
        self._fastpath_hits = self.obs.metrics.counter(
            "perf.siread_fastpath_hits")
        self._memo_hits = self.obs.metrics.counter("perf.conflict_memo_hits")
        #: ssi.aborts{cause=...}: serialization failures by cause.
        self._abort_counters = {
            cause: self.obs.metrics.counter("ssi.aborts", cause=cause.value)
            for cause in AbortCause}

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def work_units(self) -> int:
        """Total SSI bookkeeping work (cost-model input)."""
        return self.lockmgr.work_units + self._own_work

    @property
    def commit_seq_counter(self) -> int:
        return self._commit_counter

    def active_sxacts(self) -> Set[SerializableXact]:
        return set(self._active)

    def committed_retained(self) -> List[SerializableXact]:
        return list(self._committed)

    def sxact_for_xid(self, xid: int) -> Optional[SerializableXact]:
        return self._by_xid.get(xid)

    def tracked_sxacts(self) -> Set[SerializableXact]:
        """Every sxact the manager still holds state for: active plus
        committed-retained. Anything outside this set must hold no
        SIREAD locks and appear in no conflict list (the cleanup
        protocol of sections 4.7 / 6; checked by repro.analysis)."""
        return set(self._active) | set(self._committed)

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, xid: int, snapshot: Snapshot, *, read_only: bool = False,
              deferrable: bool = False) -> SerializableXact:
        """Register a new serializable transaction."""
        sx = SerializableXact(xid, snapshot, snapshot_seq=self._commit_counter,
                              read_only=read_only, deferrable=deferrable)
        self._by_xid[xid] = sx
        self._active.add(sx)
        self._own_work += 1
        if read_only and self.config.safe_snapshots:
            self._register_possible_unsafe(sx)
        return sx

    def _register_possible_unsafe(self, ro: SerializableXact) -> None:
        """Record the concurrent read/write transactions that could
        make this READ ONLY transaction's snapshot unsafe
        (section 4.2). If there are none, the snapshot is immediately
        safe -- the "important special case"."""
        concurrent_rw = {s for s in self._active
                         if s is not ro and not s.declared_read_only
                         and not s.finished}
        if not concurrent_rw:
            self._mark_ro_safe(ro)
            return
        ro.possible_unsafe_conflicts = set(concurrent_rw)
        for writer in concurrent_rw:
            writer.watching_ros.add(ro)

    def register_subxact(self, sx: SerializableXact, sub_xid: int) -> None:
        sx.sub_xids.add(sub_xid)
        self._by_xid[sub_xid] = sx

    def register_recovered_prepared(self, xid: int,
                                    snapshot: Snapshot) -> SerializableXact:
        """Re-create SSI state for a prepared transaction after crash
        recovery. The dependency graph is not crash-safe, so we
        "conservatively assume that any prepared transaction has
        rw-antidependencies both in and out" (section 7.1)."""
        sx = self.begin(xid, snapshot)
        sx.prepared = True
        sx.wrote_data = True
        sx.summary_in_max_seq = float(self._commit_counter)
        sx.summary_conflict_out = True
        sx.earliest_out_commit_seq = 0.0
        return sx

    def restore_recovered_state(self, commit_counter: int,
                                old_serxid: "dict") -> None:
        """Install durable SSI facts after crash recovery (called by
        repro.storage.durable.recovery before any new transaction
        begins): the commit-sequence counter, so post-recovery commit
        ordering stays monotonic with pre-crash commits, and the
        old-committed-serializable-xid table (section 6.2 summaries) so
        conflicts against summarized pre-crash writers are still
        detected."""
        self._commit_counter = max(self._commit_counter, int(commit_counter))
        self._old_serxid.update(old_serxid)

    # ------------------------------------------------------------------
    # doom handling
    # ------------------------------------------------------------------
    def ensure_not_doomed(self, sx: SerializableXact,
                          at: str = "statement") -> None:
        """Fail fast if another session's conflict resolution marked us
        for death (the deferred abort of section 5.4). ``at`` records
        whether the doom was noticed mid-statement or at commit, which
        the abort-cause taxonomy distinguishes."""
        if sx.doomed:
            cause = (AbortCause.DOOMED_AT_COMMIT if at == "commit"
                     else AbortCause.DOOMED_AT_OP)
            info = sx.doom_info
            self._raise_failure(
                "could not serialize access due to read/write dependencies "
                "among transactions (canceled on conflict identified by "
                "another transaction)", cause=cause, reason="doomed",
                pivot_xid=(info.pivot_xid if info else sx.xid),
                t1_xid=(info.t1_xid if info else None),
                t3_xid=(info.t3_xid if info else None),
                t3_commit_seq=(info.t3_seq if info else None),
                rule=(info.rule if info else None))

    def _raise_failure(self, message: str, *, cause: AbortCause,
                       reason: str, pivot_xid: Optional[int] = None,
                       t1_xid: Optional[int] = None,
                       t3_xid: Optional[int] = None,
                       t3_commit_seq: Optional[float] = None,
                       rule: Optional[str] = None) -> None:
        """Raise a structured SerializationFailure, counting it under
        ``ssi.aborts{cause=...}`` and tracing it."""
        self.stats.immediate_aborts += 1
        self._abort_counters[cause].inc()
        if self._tracer is not None:
            self._tracer.emit("abort.raise", pivot_xid, cause=cause.value,
                              rule=rule, t1_xid=t1_xid, t3_xid=t3_xid)
        raise SerializationFailure(
            message, pivot_xid=pivot_xid, reason=reason, cause=cause,
            t1_xid=t1_xid, t3_xid=t3_xid, t3_commit_seq=t3_commit_seq,
            rule=rule)

    def _xid_for_commit_seq(self, seq: Optional[float]) -> Optional[int]:
        """Best-effort reverse lookup of a committed transaction by its
        commit sequence number (the node may already be freed or
        summarized; precision here is only for error reporting)."""
        if seq is None or seq == INFINITE_SEQ:
            return None
        for sx in self._committed:
            if sx.cseq == seq:
                return sx.xid
        for xid, (cseq, _eo) in self._old_serxid.items():
            if cseq == seq:
                return xid
        return None

    # ------------------------------------------------------------------
    # conflict detection: reads (MVCC-based, write happened first)
    # ------------------------------------------------------------------
    def on_read_tuple(self, sx: Optional[SerializableXact], rel_oid: int,
                      tup, vis: VisibilityResult) -> None:
        """Called for every tuple a serializable transaction examines.

        The visibility result carries the section 5.2 classification:
        invisible-because-concurrent-creator and
        visible-but-concurrent-deleter are rw-conflicts out. Visible
        tuples additionally get a SIREAD lock for the read-before-write
        direction.
        """
        if sx is None or sx.ro_safe:
            return
        if (self._read_fast_path and vis.visible
                and not vis.deleter_concurrent
                and self.lockmgr.covers_read(sx, rel_oid, tup.tid.page)):
            # A relation- or page-granularity SIREAD lock we already
            # hold covers this tuple, and the visibility result carries
            # no rw-conflict evidence: acquire_tuple would dedupe and
            # return, and there is no conflict to flag. Skip the whole
            # call (doom still fails fast, as at any other operation).
            self.ensure_not_doomed(sx)
            self._fastpath_hits.inc()
            return
        self.ensure_not_doomed(sx)
        site = None
        if self._tracer is not None:
            site = tuple_target(rel_oid, tup.tid)
            self._tracer.emit("read.tuple", sx.xid, site=site,
                              visible=vis.visible)
        if vis.creator_concurrent:
            self._conflict_out_to_xid(sx, vis.creator_xid,
                                      site=site or tuple_target(rel_oid,
                                                                tup.tid))
        if vis.deleter_concurrent:
            self._conflict_out_to_xid(sx, vis.deleter_xid,
                                      site=site or tuple_target(rel_oid,
                                                                tup.tid))
        if vis.visible:
            self.lockmgr.acquire_tuple(sx, rel_oid, tup.tid)

    def read_page_covered(self, sx: Optional[SerializableXact],
                          rel_oid: int, page_no: int) -> bool:
        """Batch-executor hoist of the on_read_tuple read fast path.

        True means: for any tuple on this page whose visibility result
        is visible-with-no-concurrent-deleter, on_read_tuple would take
        the fast path (a covering page/relation SIREAD lock is already
        held, so acquire_tuple would dedupe and there is no conflict to
        flag) -- the caller may skip those calls for the whole page.
        Tuples with conflict evidence (invisible, or concurrent
        deleter) must still go through on_read_tuple individually.

        The coverage check keys on (relation, page), so it cannot
        change between tuples of one page; the doom check runs once
        here instead of once per covered tuple, equivalent because no
        scan yields (and thus no other session runs) mid-page.
        """
        if sx is None or sx.ro_safe:
            return True  # on_read_tuple is a no-op for every tuple
        if not self._read_fast_path:
            return False
        if self.lockmgr.covers_read(sx, rel_oid, page_no):
            self.ensure_not_doomed(sx)
            return True
        return False

    def note_fastpath_hits(self, n: int) -> None:
        """Batch-count reads skipped via read_page_covered (keeps the
        perf.siread_fastpath_hits counter meaningful either way)."""
        self._fastpath_hits.inc(n)

    def on_scan_relation(self, sx: Optional[SerializableXact],
                         rel_oid: int) -> None:
        """Sequential scan: relation-granularity SIREAD lock."""
        if sx is None or sx.ro_safe:
            return
        self.ensure_not_doomed(sx)
        if self._tracer is not None:
            self._tracer.emit("scan.rel", sx.xid, rel_oid=rel_oid)
        self.lockmgr.acquire_relation(sx, rel_oid)

    def on_index_page_read(self, sx: Optional[SerializableXact],
                           index_oid: int, page_no: int) -> None:
        """Index scan visited a B+-tree leaf page (gap lock)."""
        if sx is None or sx.ro_safe:
            return
        self.lockmgr.acquire_index_page(sx, index_oid, page_no)

    def on_index_scan_keys(self, sx: Optional[SerializableXact],
                           index_oid: int, scan_result) -> None:
        """Next-key locking (the paper's named future work): lock every
        key the scan matched plus the key guarding the gap beyond the
        range (+infinity if the scan ran off the right edge)."""
        if sx is None or sx.ro_safe:
            return
        self.ensure_not_doomed(sx)
        for key in scan_result.matched_keys:
            self.lockmgr.acquire_index_key(sx, index_oid, key)
        if not scan_result.guard_needed:
            return
        if scan_result.has_next:
            self.lockmgr.acquire_index_key(sx, index_oid,
                                           scan_result.next_key)
        else:
            self.lockmgr.acquire_index_infinity(sx, index_oid)

    def on_index_rel_read(self, sx: Optional[SerializableXact],
                          index_oid: int) -> None:
        """Scan through an AM without predicate-lock support: fall back
        to locking the whole index relation (section 7.4)."""
        if sx is None or sx.ro_safe:
            return
        self.lockmgr.acquire_index_relation(sx, index_oid)

    def _conflict_out_to_xid(self, reader: SerializableXact,
                             writer_xid: int,
                             site: Optional[Tuple] = None) -> None:
        """The reader saw MVCC evidence of a concurrent writer."""
        if self.config.siread_fast_path:
            # Per-(reader, writer-xid) memo: a repeat sighting of the
            # same writer xid is a no-op -- a live writer's edge is
            # already in out_conflicts (the dedupe below), an aborted
            # writer's evidence vanishes with its tuples, and a
            # summarized writer's consolidated edge was recorded (and
            # its pivot checks run) on the first sighting; later commits
            # re-examine pivots at precommit, not here (section 5.3).
            if writer_xid in reader.conflict_out_memo:
                self._memo_hits.inc()
                return
            reader.conflict_out_memo.add(writer_xid)
        top = self.clog.top_level_of(writer_xid)
        writer = self._by_xid.get(top)
        if writer is reader:
            return
        if writer is not None and not writer.aborted:
            self._flag_rw_conflict(reader, writer, actor=reader, site=site)
            return
        entry = self._old_serxid.get(top)
        if entry is None:
            # The writer was not a serializable transaction (weaker
            # isolation level); SSI's guarantee covers serializable
            # transactions only.
            return
        commit_seq, earliest_out = entry
        self._own_work += 1
        # Conflict out to a summarized committed writer (section 6.2,
        # second case): record the edge in consolidated form...
        reader.summary_conflict_out = True
        reader.earliest_out_commit_seq = min(reader.earliest_out_commit_seq,
                                             commit_seq)
        # ...check "writer as pivot": reader -> writer -> writer's
        # earliest out-conflict...
        if earliest_out is not None:
            self._maybe_fail(reader, SummaryPseudoXact(commit_seq),
                             earliest_out, actor=reader)
        # ...and "reader as pivot" with the committed writer as T3.
        self._check_pivot_as_t2(reader, t3_seq=commit_seq, actor=reader)

    # ------------------------------------------------------------------
    # conflict detection: writes (SIREAD-based, read happened first)
    # ------------------------------------------------------------------
    def on_write_tuple(self, sx: Optional[SerializableXact], rel_oid: int,
                       tid: TID, *, in_subxact: bool = False) -> None:
        """Called for every heap tuple write (insert / update / delete).

        Checks SIREAD locks at every granularity, coarsest to finest
        (section 5.2.1), flagging a rw-antidependency from each holder.
        """
        if sx is None:
            return
        self.ensure_not_doomed(sx)
        sx.wrote_data = True
        if self._tracer is not None:
            self._tracer.emit("write.tuple", sx.xid,
                              site=tuple_target(rel_oid, tid))
        holders, summary_seq = self.lockmgr.holders_of(
            heap_write_targets(rel_oid, tid))
        self._flag_holders(sx, holders, summary_seq,
                           site=tuple_target(rel_oid, tid))
        if (self.config.own_write_drops_siread and not in_subxact):
            # Section 7.3: our write lock subsumes our SIREAD lock --
            # but not inside a subtransaction, whose write lock could
            # be rolled back while the read stands.
            self.lockmgr.drop_tuple_lock(sx, rel_oid, tid)

    def on_index_insert(self, sx: Optional[SerializableXact], index_oid: int,
                        insert_result, *, check_conflicts: bool = True,
                        key_locking_ok: bool = True) -> None:
        """Called after inserting an index entry: first propagate gap
        locks across page splits, then check the landing pages for
        SIREAD holders whose predicate reads we would invalidate.

        ``check_conflicts=False`` is used for new versions whose index
        key is unchanged (a HOT-style update): no new key enters any
        scanned range, so gap locks are not violated -- the heap tuple
        SIREAD locks already cover value changes. Splits still
        propagate locks either way.
        """
        for old_page, new_page in insert_result.splits:
            self.lockmgr.page_split(index_oid, old_page, new_page)
        if sx is None or not check_conflicts:
            return
        self.ensure_not_doomed(sx)
        sx.wrote_data = True
        if self.config.index_locking == "nextkey" and key_locking_ok:
            # ARIES/KVL: an insert of key k invalidates readers holding
            # k itself (duplicates entering a scanned set) or the key
            # guarding the gap k lands in.
            targets = [index_rel_target(index_oid),
                       index_key_target(index_oid, insert_result.key)]
            if insert_result.has_successor:
                targets.append(index_key_target(
                    index_oid, insert_result.successor_key))
            else:
                targets.append(index_inf_target(index_oid))
        else:
            targets = index_insert_targets(index_oid,
                                           insert_result.leaf_pages)
        holders, summary_seq = self.lockmgr.holders_of(targets)
        self._flag_holders(sx, holders, summary_seq, site=targets[-1])

    def _flag_holders(self, writer: SerializableXact,
                      holders: Set[SerializableXact],
                      summary_seq: Optional[float],
                      site: Optional[Tuple] = None) -> None:
        for holder in holders:
            if holder is writer or holder.aborted:
                continue
            self._flag_rw_conflict(holder, writer, actor=writer, site=site)
        if summary_seq is not None:
            # A summarized committed transaction read this data:
            # T_committed -> writer. Keep it as a conservative summary
            # in-conflict and check writer-as-pivot right away.
            self._own_work += 1
            prev = writer.summary_in_max_seq
            writer.summary_in_max_seq = (summary_seq if prev is None
                                         else max(prev, summary_seq))
            self._check_pivot_pair(SummaryPseudoXact(summary_seq), writer,
                                   actor=writer)

    # ------------------------------------------------------------------
    # edge recording + dangerous structure checks
    # ------------------------------------------------------------------
    def _flag_rw_conflict(self, reader: SerializableXact,
                          writer: SerializableXact,
                          actor: SerializableXact,
                          site: Optional[Tuple] = None) -> None:
        """Record the edge reader -rw-> writer and look for dangerous
        structures it completes. ``site`` is the predicate-lock target
        that witnessed the conflict (trace/post-mortem detail only)."""
        if self.config.conflict_tracking == "flags":
            if self._tracer is not None:
                self._tracer.emit("rw.conflict", actor.xid,
                                  reader_xid=reader.xid,
                                  writer_xid=writer.xid, site=site)
            self._flag_rw_conflict_flags_mode(reader, writer, actor)
            return
        if writer in reader.out_conflicts:
            return
        self._own_work += 1
        self.stats.conflicts_flagged += 1
        if self._tracer is not None:
            self._tracer.emit("rw.conflict", actor.xid,
                              reader_xid=reader.xid, writer_xid=writer.xid,
                              site=site)
        reader.out_conflicts.add(writer)
        writer.in_conflicts.add(reader)
        if writer.committed:
            reader.earliest_out_commit_seq = min(
                reader.earliest_out_commit_seq, writer.cseq)
        # Case A -- the writer is the pivot: reader -> writer -> T3.
        self._check_pivot_pair(reader, writer, actor)
        # Case B -- the reader is the pivot: T1 -> reader -> writer.
        # With the commit-ordering optimization this is actionable only
        # if the writer (T3) already committed; otherwise the writer's
        # own pre-commit check will catch it (safe-retry rule 1:
        # nothing aborts until T3 commits). Without the optimization,
        # basic SSI aborts on any pivot with both edges.
        if writer.committed:
            self._check_pivot_as_t2(reader, t3_seq=writer.cseq, actor=actor)
        elif not self.config.commit_ordering_opt:
            self._check_pivot_as_t2(reader, t3_seq=INFINITE_SEQ,
                                    actor=actor)

    def _flag_rw_conflict_flags_mode(self, reader: SerializableXact,
                                     writer: SerializableXact,
                                     actor: SerializableXact) -> None:
        """Ablation variant: the original SSI paper's two single-bit
        flags per transaction (section 5.3). No commit-ordering or
        read-only optimizations are possible; any transaction with both
        flags set is aborted on the spot."""
        self.stats.conflicts_flagged += 1
        reader.flag_conflict_out = True
        writer.flag_conflict_in = True
        for pivot in (writer, reader):
            if pivot.flag_conflict_in and pivot.flag_conflict_out:
                self.stats.dangerous_structures += 1
                other = reader if pivot is writer else writer
                self._choose_victim(other, pivot, actor,
                                    DoomInfo(t1_xid=None, pivot_xid=pivot.xid,
                                             t3_xid=None, t3_seq=None,
                                             rule="flags"))
                return

    def _check_pivot_pair(self, t1: Participant, t2: SerializableXact,
                          actor: SerializableXact) -> None:
        """T2 as pivot with a known T1: find the best committed T3.

        The consolidated ``earliest_out_commit_seq`` is exactly the
        most-dangerous T3 candidate: the smaller its commit seq, the
        easier it satisfies every dangerous-structure condition, so one
        check against the minimum is equivalent to checking every
        committed out-neighbour.
        """
        self._own_work += 1
        t3_seq = t2.earliest_out_commit_seq
        has_out = (t3_seq < INFINITE_SEQ or t2.summary_conflict_out
                   or bool(t2.out_conflicts))
        if not has_out:
            return
        self._maybe_fail(t1, t2, t3_seq, actor)

    def _check_pivot_as_t2(self, t2: SerializableXact, t3_seq: float,
                           actor: SerializableXact) -> None:
        """T2 as pivot with a known committed T3: try every T1."""
        for t1 in list(t2.in_conflicts):
            if t1 is t2:
                continue
            self._maybe_fail(t1, t2, t3_seq, actor)
            if t2.doomed or t2.aborted:
                return
        if t2.summary_in_max_seq is not None:
            self._maybe_fail(SummaryPseudoXact(t2.summary_in_max_seq), t2,
                             t3_seq, actor)

    def _maybe_fail(self, t1: Participant, t2: Participant, t3_seq: float,
                    actor: SerializableXact) -> None:
        """Evaluate one dangerous-structure candidate T1 -> T2 -> T3.

        ``t3_seq`` is T3's commit sequence number (+inf if no committed
        T3 exists, which only fires with the commit-ordering
        optimization disabled).
        """
        self._own_work += 1
        rule = "basic"
        if self.config.commit_ordering_opt:
            # Theorem 1 refinement (section 3.3.1): no anomaly unless
            # T3 committed first. Equal seq covers the T1 == T3
            # two-transaction cycle.
            if t3_seq == INFINITE_SEQ:
                return
            if t1.cseq < t3_seq or t2.cseq < t3_seq:
                return
            rule = "commit_order"
        if self.config.read_only_opt and t1.is_effectively_read_only():
            # Theorem 3: a read-only T1 is dangerous only if T3
            # committed before T1 took its snapshot.
            if not t3_seq <= t1.snapshot_seq:
                return
            rule = "ro_snapshot"
        self.stats.dangerous_structures += 1
        info = DoomInfo(
            t1_xid=getattr(t1, "xid", None),
            pivot_xid=getattr(t2, "xid", None),
            t3_xid=self._xid_for_commit_seq(t3_seq),
            t3_seq=(t3_seq if t3_seq != INFINITE_SEQ else None),
            rule=rule)
        if self._tracer is not None:
            self._tracer.emit("danger.check", actor.xid,
                              t1_xid=info.t1_xid, pivot_xid=info.pivot_xid,
                              t3_xid=info.t3_xid, t3_seq=info.t3_seq,
                              rule=rule)
        self._choose_victim(t1, t2, actor, info)

    def _choose_victim(self, t1: Participant, t2: Participant,
                       actor: SerializableXact, info: DoomInfo) -> None:
        """Safe-retry victim selection (section 5.4): prefer the pivot
        T2; never abort committed or prepared transactions; if nothing
        else is abortable, the acting transaction must die."""
        for victim in (t2, t1):
            if isinstance(victim, SummaryPseudoXact):
                continue
            if victim.committed or victim.prepared or victim.aborted:
                continue
            self._doom(victim, actor, info)
            return
        self._raise_failure(
            "could not serialize access due to read/write dependencies "
            "among transactions (all other participants already "
            "committed or prepared)", cause=AbortCause.UNABORTABLE,
            reason="pivot unabortable",
            pivot_xid=(info.pivot_xid if info.pivot_xid is not None
                       else actor.xid),
            t1_xid=info.t1_xid, t3_xid=info.t3_xid,
            t3_commit_seq=info.t3_seq, rule=info.rule)

    def _doom(self, victim: SerializableXact, actor: SerializableXact,
              info: DoomInfo) -> None:
        if victim is actor:
            self._raise_failure(
                "could not serialize access due to read/write dependencies "
                "among transactions (pivot)", cause=AbortCause.PIVOT,
                reason="pivot",
                pivot_xid=(info.pivot_xid if info.pivot_xid is not None
                           else victim.xid),
                t1_xid=info.t1_xid, t3_xid=info.t3_xid,
                t3_commit_seq=info.t3_seq, rule=info.rule)
        victim.doomed = True
        victim.doom_info = info
        self.stats.doomed += 1
        if self._tracer is not None:
            self._tracer.emit("doom", victim.xid, by_xid=actor.xid,
                              t1_xid=info.t1_xid, pivot_xid=info.pivot_xid,
                              t3_xid=info.t3_xid, rule=info.rule)

    # ------------------------------------------------------------------
    # commit / prepare / abort
    # ------------------------------------------------------------------
    def precommit_check(self, sx: SerializableXact) -> None:
        """The check run before commit (and before PREPARE).

        The committing transaction may be the T3 of a dangerous
        structure of uncommitted transactions; since it is about to be
        the first to commit, the structure becomes real and the pivot
        T2 must be aborted (section 5.4, rules 1-2). If the pivot is
        prepared it cannot be aborted, and the committing transaction
        itself dies instead (section 7.1).
        """
        self.ensure_not_doomed(sx, at="commit")
        if self.config.conflict_tracking == "flags":
            return  # flags mode resolves everything at edge time
        for pivot in list(sx.in_conflicts):
            if pivot.aborted:
                continue
            if pivot.committed and self.config.commit_ordering_opt:
                # The pivot committed before us: we are not the first
                # committer of that structure.
                continue
            candidates: List[Participant] = [t1 for t1 in pivot.in_conflicts
                                             if t1 is not pivot]
            if pivot.summary_in_max_seq is not None:
                candidates.append(SummaryPseudoXact(pivot.summary_in_max_seq))
            for t1 in candidates:
                self._own_work += 1
                if t1 is not sx:
                    if self.config.commit_ordering_opt and t1.committed:
                        continue  # T1 committed before T3: safe
                    if (self.config.read_only_opt
                            and t1.is_effectively_read_only()):
                        # We commit *now*, necessarily after T1's
                        # snapshot, so a read-only T1 is a false
                        # positive (Theorem 3).
                        continue
                self.stats.dangerous_structures += 1
                # The committing sx is the T3 of this structure: it is
                # about to be the first of the three to commit.
                info = DoomInfo(
                    t1_xid=getattr(t1, "xid", None),
                    pivot_xid=pivot.xid, t3_xid=sx.xid, t3_seq=None,
                    rule=("commit_order" if self.config.commit_ordering_opt
                          else "basic"))
                if self._tracer is not None:
                    self._tracer.emit("danger.check", sx.xid,
                                      t1_xid=info.t1_xid,
                                      pivot_xid=pivot.xid, t3_xid=sx.xid,
                                      rule=info.rule)
                self._choose_victim(t1, pivot, actor=sx, info=info)
                break  # pivot resolved (doomed); next pivot

    def prepare(self, sx: SerializableXact) -> None:
        """PREPARE TRANSACTION: run the pre-commit check now, because a
        prepared transaction can never be aborted afterwards
        (section 7.1)."""
        self.precommit_check(sx)
        sx.prepared = True

    def commit(self, sx: SerializableXact) -> None:
        """Post-commit SSI processing. The engine must have already run
        precommit_check and durably committed the transaction."""
        self._commit_counter += 1
        sx.commit_seq = self._commit_counter
        sx.committed = True
        sx.prepared = False
        self._active.discard(sx)
        self._committed.append(sx)
        self.stats.committed += 1
        # Everyone with an edge into us now has a committed out-conflict
        # (section 6.1's recorded commit sequence number).
        for reader in sx.in_conflicts:
            reader.earliest_out_commit_seq = min(
                reader.earliest_out_commit_seq, sx.commit_seq)
            self._own_work += 1
        self._resolve_ro_watchers(sx, committed=True)
        self._deregister_ro(sx)
        self._cleanup()

    def abort(self, sx: SerializableXact) -> None:
        """Roll back: conflicts involving an aborted transaction are
        removed outright (section 5.3)."""
        sx.aborted = True
        sx.doomed = False
        sx.prepared = False
        self._active.discard(sx)
        self.stats.aborted += 1
        for writer in sx.out_conflicts:
            writer.in_conflicts.discard(sx)
        for reader in sx.in_conflicts:
            reader.out_conflicts.discard(sx)
        sx.out_conflicts.clear()
        sx.in_conflicts.clear()
        self.lockmgr.release_all(sx)
        self._resolve_ro_watchers(sx, committed=False)
        self._deregister_ro(sx)
        for xid in sx.all_xids():
            self._by_xid.pop(xid, None)
        self._cleanup()

    def _resolve_ro_watchers(self, sx: SerializableXact,
                             committed: bool) -> None:
        """A read/write transaction finished: settle the safety of the
        READ ONLY transactions that registered it (section 4.2)."""
        for ro in list(sx.watching_ros):
            if (committed and sx.wrote_data
                    and sx.earliest_out_commit_seq <= ro.snapshot_seq):
                # sx committed with a conflict out to a transaction
                # that committed before ro's snapshot: unsafe.
                self._mark_ro_unsafe(ro)
            else:
                ro.possible_unsafe_conflicts.discard(sx)
                if not ro.possible_unsafe_conflicts and not ro.ro_unsafe:
                    self._mark_ro_safe(ro)
        sx.watching_ros.clear()

    def _deregister_ro(self, sx: SerializableXact) -> None:
        for writer in sx.possible_unsafe_conflicts:
            writer.watching_ros.discard(sx)
        sx.possible_unsafe_conflicts.clear()

    def _mark_ro_safe(self, ro: SerializableXact) -> None:
        """The snapshot is safe: drop all SSI state; the transaction
        continues as plain snapshot isolation (section 4.2)."""
        ro.ro_safe = True
        ro.possible_unsafe_conflicts.clear()
        self.stats.safe_snapshots += 1
        if self._tracer is not None:
            self._tracer.emit("ro.safe", ro.xid)
        self.lockmgr.release_all(ro)
        for writer in list(ro.out_conflicts):
            writer.in_conflicts.discard(ro)
        ro.out_conflicts.clear()

    def _mark_ro_unsafe(self, ro: SerializableXact) -> None:
        ro.ro_unsafe = True
        self.stats.unsafe_snapshots += 1
        if self._tracer is not None:
            self._tracer.emit("ro.unsafe", ro.xid)
        for writer in ro.possible_unsafe_conflicts:
            writer.watching_ros.discard(ro)
        ro.possible_unsafe_conflicts.clear()

    # ------------------------------------------------------------------
    # memory mitigation (section 6)
    # ------------------------------------------------------------------
    def _min_active_snapshot_seq(self) -> float:
        return min((s.snapshot_seq for s in self._active if not s.finished),
                   default=INFINITE_SEQ)

    def _cleanup(self) -> None:
        min_snap = self._min_active_snapshot_seq()
        active = [s for s in self._active if not s.finished]

        # (3 in section 6's list) aggressive cleanup: a committed
        # transaction's SIREAD locks are unnecessary once no active
        # transaction is concurrent with it.
        for sx in self._committed:
            if not sx.locks_released and sx.cseq <= min_snap:
                self.lockmgr.release_all(sx)
                sx.locks_released = True

        # Section 6.1's extra optimization: if only read-only
        # transactions remain active, all committed SIREAD locks and
        # in-conflict lists can go (no active transaction can write).
        if active and all(s.declared_read_only or s.ro_safe for s in active):
            for sx in self._committed:
                if not sx.locks_released:
                    self.lockmgr.release_all(sx)
                    sx.locks_released = True
                for reader in list(sx.in_conflicts):
                    reader.out_conflicts.discard(sx)
                sx.in_conflicts.clear()

        # Free nodes nothing can reference anymore.
        survivors: List[SerializableXact] = []
        for sx in self._committed:
            partners = sx.in_conflicts | sx.out_conflicts
            if (sx.locks_released and sx.cseq <= min_snap
                    and all(p.finished for p in partners)):
                for reader in sx.in_conflicts:
                    reader.out_conflicts.discard(sx)
                for writer in sx.out_conflicts:
                    writer.in_conflicts.discard(sx)
                for xid in sx.all_xids():
                    self._by_xid.pop(xid, None)
            else:
                survivors.append(sx)
        self._committed = survivors

        # (4) summarization under memory pressure.
        while len(self._committed) > self.config.max_committed_sxacts:
            self._summarize(self._committed.pop(0))

        self.lockmgr.cleanup_summary(min_snap)

    def _summarize(self, sx: SerializableXact) -> None:
        """Consolidate one committed transaction (section 6.2): SIREAD
        locks move to the dummy transaction tagged with the commit seq,
        and the old-serxid table keeps only "earliest out-conflict
        commit seq" per xid. Neighbours keep conservative summary
        markers; precision lost here can only add false positives,
        never miss an anomaly."""
        self.stats.summarized += 1
        if self._tracer is not None:
            self._tracer.emit("summarize", sx.xid, commit_seq=sx.cseq)
        eo = sx.earliest_out_commit_seq
        entry = (sx.cseq, eo if eo < INFINITE_SEQ else None)
        for xid in sx.all_xids():
            self._old_serxid[xid] = entry
            self._by_xid.pop(xid, None)
        self.lockmgr.transfer_to_summary(sx, sx.cseq)
        for reader in list(sx.in_conflicts):
            reader.out_conflicts.discard(sx)
            reader.summary_conflict_out = True
            reader.earliest_out_commit_seq = min(
                reader.earliest_out_commit_seq, sx.cseq)
        for writer in list(sx.out_conflicts):
            writer.in_conflicts.discard(sx)
            prev = writer.summary_in_max_seq
            writer.summary_in_max_seq = (sx.cseq if prev is None
                                         else max(prev, sx.cseq))
        sx.in_conflicts.clear()
        sx.out_conflicts.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def old_serxid_table(self) -> Dict[int, Tuple[float, Optional[float]]]:
        return dict(self._old_serxid)
