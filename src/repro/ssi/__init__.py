"""Serializable Snapshot Isolation: the paper's primary contribution.

Layout:

* :mod:`repro.ssi.targets` -- predicate-lock target tags over the
  relation / page / tuple hierarchy (plus index pages/relations);
* :mod:`repro.ssi.sxact` -- per-transaction SSI state
  (SerializableXact): rw-antidependency lists, commit sequence numbers,
  flags (DOOMED, PREPARED, RO_SAFE, ...);
* :mod:`repro.ssi.lockmgr` -- the SIREAD lock manager (section 5.2.1):
  non-blocking, multigranularity without intention locks, granularity
  promotion, page-split lock copying, DDL promotions, and consolidation
  into the summary dummy transaction (section 6.2);
* :mod:`repro.ssi.manager` -- conflict detection and resolution
  (sections 5.2-5.4), the read-only optimizations (section 4), and the
  memory-mitigation machinery (section 6).
"""

from repro.ssi.sxact import SerializableXact, INFINITE_SEQ
from repro.ssi.lockmgr import SIReadLockManager
from repro.ssi.manager import SSIManager
from repro.ssi.targets import (index_page_target, index_rel_target,
                               page_target, rel_target, tuple_target)

__all__ = [
    "SerializableXact",
    "INFINITE_SEQ",
    "SIReadLockManager",
    "SSIManager",
    "rel_target",
    "page_target",
    "tuple_target",
    "index_page_target",
    "index_rel_target",
]
