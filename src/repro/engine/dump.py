"""pg_dump-style consistent dumps.

Section 4.3 motivates deferrable transactions with exactly this tool:
"periodic database maintenance tasks, such as backups using
PostgreSQL's pg_dump utility, may also use long-running transactions",
and section 2.2 notes that even a read-only pg_dump "can expose
anomalous states of the database" under snapshot isolation.

:func:`dump_sql` therefore runs under ``BEGIN SERIALIZABLE READ ONLY,
DEFERRABLE``: it waits for a safe snapshot, then scans every table
with zero SSI overhead and zero abort risk, producing a SQL script
that :func:`restore_sql` replays into an empty database.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.engine.isolation import IsolationLevel
from repro.sql.executor import SQLSession


def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, (tuple, list)):
        return "(" + ", ".join(_literal(v) for v in value) + ")"
    if isinstance(value, (int, float)):
        return repr(value)
    raise TypeError(f"cannot dump value of type {type(value).__name__}")


def _index_kind(index) -> str:
    if getattr(index, "spatial", False):
        return "gist"
    if not index.ordered:
        return "hash"
    return "btree"


def dump_sql(db, *, session=None, deferrable: bool = True) -> List[str]:
    """Produce a consistent SQL script for the whole database.

    Uses a DEFERRABLE read-only serializable transaction by default;
    under the deterministic scheduler the BEGIN suspends until a safe
    snapshot arrives (direct callers with idle databases proceed
    immediately, the "important special case" of section 4.2).
    """
    statements: List[str] = []
    own_session = session is None
    if session is None:
        session = db.session()
    session.begin(IsolationLevel.SERIALIZABLE, read_only=True,
                  deferrable=deferrable)
    try:
        for name in sorted(db.relations()):
            rel = db.relations()[name]
            columns = ", ".join(rel.columns)
            statements.append(f"CREATE TABLE {name} ({columns})")
            for index in rel.indexes.values():
                unique = "UNIQUE " if index.unique else ""
                statements.append(
                    f"CREATE {unique}INDEX {index.name} ON {name} "
                    f"({index.column}) USING {_index_kind(index).upper()}")
            for row in session.select(name):
                cols = ", ".join(rel.columns)
                values = ", ".join(_literal(row.get(c)) for c in rel.columns)
                statements.append(
                    f"INSERT INTO {name} ({cols}) VALUES ({values})")
    finally:
        if session.in_transaction():
            session.commit()
    return statements


def restore_sql(db, statements: List[str]) -> None:
    """Replay a dump into an (empty) database."""
    sql = SQLSession(db.session())
    for statement in statements:
        sql.execute(statement)
