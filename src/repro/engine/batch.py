"""Batch-at-a-time execution primitives.

The vectorized executor (``PerfConfig.vectorized_executor``) moves the
per-tuple Python dispatch of the seed scan loop out of the hot path:

* a :class:`TupleBatch` is a thin view over the live tuples of one
  slotted heap page (or one chunk of an index scan's tid list) --
  tuples are shared with the heap, never copied;
* :func:`compile_batch_filter` specializes a predicate into a single
  list-comprehension closure over a batch, replicating the predicate's
  ``matches`` semantics exactly (including the None handling of the
  ordered comparisons) so batch filtering returns byte-identical rows
  to per-tuple ``pred.matches`` calls;
* :func:`chunks` slices long sequences into ``PerfConfig.batch_size``
  pieces for operators that are not naturally page-bounded.

SSI correctness: batching changes *when* checks run, never *whether*.
The executor still classifies visibility per tuple and takes the same
SIREAD locks; the only hoisted check is the read-coverage fast path
(`SSIManager.read_page_covered`), which is already tuple-independent
because it keys on (relation, page). See DESIGN.md, "Vectorized
execution".
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Sequence

from repro.engine.predicate import (AlwaysTrue, And, Between, Eq, Ge, Gt, Le,
                                    Lt, Ne, Predicate)
from repro.storage.tuple import HeapTuple

#: A compiled batch filter: list of tuples in, matching tuples out
#: (input order preserved).
BatchFilter = Callable[[Sequence[HeapTuple]], List[HeapTuple]]


class TupleBatch:
    """A columnar view over the live tuples of one page (or chunk).

    Tuples are borrowed from the heap; the batch owns nothing and must
    not outlive the statement that built it.
    """

    __slots__ = ("rel_oid", "page_no", "tuples", "all_visible")

    def __init__(self, rel_oid: int, page_no: int,
                 tuples: List[HeapTuple], all_visible: bool = False) -> None:
        self.rel_oid = rel_oid
        self.page_no = page_no
        self.tuples = tuples
        self.all_visible = all_visible

    def __len__(self) -> int:
        return len(self.tuples)

    def column(self, name: str) -> List[Any]:
        """One column of the batch as a list (columnar access)."""
        return [t.data.get(name) for t in self.tuples]

    def rows(self) -> List[dict]:
        """Zero-copy row views (the live heap dicts; read-only)."""
        return [t.data for t in self.tuples]


def compile_batch_filter(pred: Predicate) -> BatchFilter:
    """Specialize ``pred`` into one closure applied per batch.

    Each arm replicates the corresponding ``Predicate.matches``
    exactly; anything without a specialization (And/Or/Func/...) falls
    back to calling ``matches`` per tuple, which is still one Python
    call fewer than the seed loop's attribute lookups.
    """
    if isinstance(pred, AlwaysTrue):
        # Identity, not a copy: every consumer either extends its own
        # list from the result or reads it (aggregate sinks), so the
        # batch can be passed through unchanged.
        return lambda tups: tups
    if isinstance(pred, Eq):
        c, v = pred.column, pred.value
        return lambda tups: [t for t in tups if t.data.get(c) == v]
    if isinstance(pred, Ne):
        c, v = pred.column, pred.value
        return lambda tups: [t for t in tups if t.data.get(c) != v]
    if isinstance(pred, Lt):
        c, v = pred.column, pred.value
        return lambda tups: [t for t in tups
                             if (x := t.data.get(c)) is not None and x < v]
    if isinstance(pred, Le):
        c, v = pred.column, pred.value
        return lambda tups: [t for t in tups
                             if (x := t.data.get(c)) is not None and x <= v]
    if isinstance(pred, Gt):
        c, v = pred.column, pred.value
        return lambda tups: [t for t in tups
                             if (x := t.data.get(c)) is not None and x > v]
    if isinstance(pred, Ge):
        c, v = pred.column, pred.value
        return lambda tups: [t for t in tups
                             if (x := t.data.get(c)) is not None and x >= v]
    if isinstance(pred, Between):
        c, lo, hi = pred.column, pred.lo, pred.hi
        return lambda tups: [t for t in tups
                             if (x := t.data.get(c)) is not None
                             and lo <= x <= hi]
    if isinstance(pred, And):
        # One specialized sub-filter per conjunct, applied in order
        # (same short-circuit semantics as all(...)).
        subs = [compile_batch_filter(p) for p in pred.predicates]

        def conjunction(tups: Sequence[HeapTuple]) -> List[HeapTuple]:
            out = list(tups)
            for sub in subs:
                if not out:
                    break
                out = sub(out)
            return out

        return conjunction
    matches = pred.matches
    return lambda tups: [t for t in tups if matches(t.data)]


class BatchAggregator:
    """Folds COUNT/SUM/MIN/MAX/AVG over matched tuple batches, one page
    at a time (the vectorized aggregate pushdown: the scan never
    materializes a row list, it feeds each page's matches straight into
    these accumulators via the scan's ``sink`` hook).

    ``finalize`` replicates the SQL layer's per-row aggregation exactly:
    COUNT(*) counts rows, every other form skips NULL inputs, an empty
    input yields NULL (0 for COUNT), AVG uses true division. Equality
    holds bit-for-bit even for floats because the fold order is the
    scan order in both paths and partial sums chain through
    ``sum(values, acc)`` -- the same left-to-right ``(acc + v1) + v2``
    grouping a single ``sum()`` over the whole column would use. MIN and
    MAX keep the first-seen extremum (strict comparisons), matching
    ``min()``/``max()`` first-occurrence semantics across page splits.
    """

    __slots__ = ("specs", "_rows", "_states")

    def __init__(self, specs: Sequence[tuple]) -> None:
        #: (func, column) pairs; column None only for COUNT(*).
        self.specs = list(specs)
        self._rows = 0
        # Per spec: [non-null count, running sum, min, max].
        self._states: List[list] = [[0, 0, None, None] for _ in self.specs]

    def update(self, tups: Sequence[HeapTuple]) -> None:
        """Fold one batch of matched tuples (scan order)."""
        self._rows += len(tups)
        for (func, column), st in zip(self.specs, self._states):
            if column is None:  # COUNT(*) needs only the row count
                continue
            values = [v for t in tups
                      if (v := t.data.get(column)) is not None]
            if not values:
                continue
            st[0] += len(values)
            # Fold only what the func needs: MIN/MAX work over any
            # ordered type (strings too), where a sum would raise.
            if func in ("SUM", "AVG"):
                st[1] = sum(values, st[1])
            elif func == "MIN":
                lo = min(values)
                if st[2] is None or lo < st[2]:
                    st[2] = lo
            elif func == "MAX":
                hi = max(values)
                if st[3] is None or hi > st[3]:
                    st[3] = hi

    def finalize(self) -> List[Any]:
        """One value per spec, in spec order."""
        out: List[Any] = []
        for (func, column), st in zip(self.specs, self._states):
            if func == "COUNT":
                out.append(self._rows if column is None else st[0])
            elif st[0] == 0:
                out.append(None)
            elif func == "SUM":
                out.append(st[1])
            elif func == "MIN":
                out.append(st[2])
            elif func == "MAX":
                out.append(st[3])
            elif func == "AVG":
                out.append(st[1] / st[0])
            else:
                raise ValueError(f"unknown aggregate {func}")
        return out


def chunks(seq: Sequence, size: int) -> Iterator[Sequence]:
    """Slice ``seq`` into consecutive pieces of at most ``size``."""
    size = max(1, size)
    for start in range(0, len(seq), size):
        yield seq[start:start + size]
