"""Monitoring views, in the style of PostgreSQL's system catalogs.

Operational visibility was part of what made the 9.1 feature shippable;
these functions render the engine's live state the way a DBA would see
it in ``pg_stat_activity``, ``pg_locks``, ``pg_prepared_xacts``, and
the SSI-specific ``pg_stat_ssi``-style counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine.transaction import TxnStatus


def stat_activity(db) -> List[Dict[str, Any]]:
    """One row per transaction in progress (pg_stat_activity)."""
    rows = []
    for txn in sorted(db.active_transactions(), key=lambda t: t.xid):
        sx = txn.sxact
        rows.append({
            "xid": txn.xid,
            "isolation": txn.isolation.value,
            "status": txn.status.value,
            "read_only": txn.read_only,
            "deferrable": txn.deferrable,
            "snapshot_xmin": txn.snapshot.xmin if txn.snapshot else None,
            "snapshot_xmax": txn.snapshot.xmax if txn.snapshot else None,
            "subxact_depth": len(txn.subxacts),
            "doomed": bool(sx and sx.doomed),
            "safe_snapshot": bool(sx and sx.ro_safe),
        })
    return rows


def lock_status(db) -> List[Dict[str, Any]]:
    """Heavyweight locks: granted holds and queued waiters (pg_locks)."""
    rows = []
    for lock in db.lockmgr.iter_locks():
        rows.append({"tag": lock["tag"], "mode": lock["mode"].value,
                     "owner_xid": lock["owner_xid"],
                     "granted": lock["granted"]})
    rows.sort(key=lambda r: (str(r["tag"]), r["owner_xid"]))
    return rows


def siread_locks(db) -> List[Dict[str, Any]]:
    """SIREAD predicate locks by target (pg_locks mode=SIReadLock)."""
    rows = []
    for lock in db.ssi.lockmgr.iter_locks():
        holder = lock["holder"]
        if holder is not None:
            rows.append({"target": lock["target"], "holder_xid": holder.xid,
                         "holder_committed": holder.committed})
        else:
            rows.append({"target": lock["target"], "holder_xid": None,
                         "holder_committed": True,
                         "summary_commit_seq": lock["summary_commit_seq"]})
    rows.sort(key=lambda r: str(r["target"]))
    return rows


def prepared_xacts(db) -> List[Dict[str, Any]]:
    """Prepared two-phase transactions (pg_prepared_xacts)."""
    return [{"gid": gid, "xid": txn.xid}
            for gid, txn in sorted(db._prepared.items())]


def ssi_summary(db) -> Dict[str, Any]:
    """SSI bookkeeping at a glance (what a pg_stat_ssi view would show)."""
    ssi = db.ssi
    return {
        "active_sxacts": len(ssi.active_sxacts()),
        "committed_retained": len(ssi.committed_retained()),
        "summarized_xids": len(ssi.old_serxid_table()),
        "siread_locks": ssi.lockmgr.lock_count,
        "siread_locks_peak": ssi.lockmgr.peak_lock_count,
        "conflicts_flagged": ssi.stats.conflicts_flagged,
        "dangerous_structures": ssi.stats.dangerous_structures,
        "doomed": ssi.stats.doomed,
        "safe_snapshots": ssi.stats.safe_snapshots,
        "unsafe_snapshots": ssi.stats.unsafe_snapshots,
    }


def stat_ssi(db) -> Dict[str, Any]:
    """The full metrics registry, flattened (pg_stat_ssi-style).

    Keys are ``name{label=value,...}`` strings; values are counter and
    gauge readings plus histogram summaries at this instant. Use
    ``db.obs.metrics.snapshot()`` directly for diffable snapshots."""
    return dict(db.obs.metrics.snapshot())


def trace_events(db, kind: Optional[str] = None,
                 xid: Optional[int] = None) -> List[Dict[str, Any]]:
    """Structured trace events as dicts, optionally filtered by event
    kind and/or transaction xid (events mentioning the xid in any
    ``*_xid`` payload field match too). Empty unless tracing is on
    (``ObsConfig(enabled=True, trace=True)``)."""
    return [ev.to_dict() for ev in db.obs.trace_events(kind, xid)]
