"""Per-transaction runtime state."""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.isolation import IsolationLevel
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.visibility import TxnView
from repro.ssi.sxact import SerializableXact


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    #: A statement failed; only ROLLBACK (TO SAVEPOINT) is accepted, as
    #: in PostgreSQL ("current transaction is aborted").
    FAILED = "failed"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Subtransaction:
    """A savepoint frame: its own xid, linked to the parent via the
    commit log's subtrans map (paper section 7.3).

    ``merged`` holds xids of released (committed) child subtransactions:
    their fate follows this frame -- committed with it, or aborted if
    this frame is rolled back.
    """

    __slots__ = ("name", "xid", "merged")

    def __init__(self, name: str, xid: int) -> None:
        self.name = name
        self.xid = xid
        self.merged: List[int] = []


class Transaction:
    """State of one top-level transaction."""

    def __init__(self, xid: int, isolation: IsolationLevel,
                 snapshot: Optional[Snapshot], *, read_only: bool = False,
                 deferrable: bool = False) -> None:
        self.xid = xid
        self.isolation = isolation
        self.snapshot = snapshot
        self.read_only = read_only
        self.deferrable = deferrable
        self.status = TxnStatus.ACTIVE
        #: Command counter; incremented before every statement so each
        #: command sees earlier commands' writes but not its own.
        self.curcid = 0
        #: SSI state (SERIALIZABLE transactions only).
        self.sxact: Optional[SerializableXact] = None
        #: Open savepoints, outermost first.
        self.subxacts: List[Subtransaction] = []
        #: Xids of released subtransactions merged into the top level.
        self.merged_subs: List[int] = []
        #: All xids ever assigned to this transaction (top + every
        #: subxact, including rolled-back ones, which the commit log
        #: reports aborted).
        self.all_xids: Set[int] = {xid}
        #: Logical change stream for WAL shipping:
        #: (kind, relation name, old row or None, new row or None).
        self.wal_changes: List[Tuple[str, str, Optional[Dict[str, Any]],
                                     Optional[Dict[str, Any]]]] = []
        #: Two-phase commit global identifier once prepared.
        self.gid: Optional[str] = None

    # -- xid helpers --------------------------------------------------------
    @property
    def current_xid(self) -> int:
        """The xid new tuple writes are stamped with: the innermost
        open subtransaction, or the top-level xid."""
        return self.subxacts[-1].xid if self.subxacts else self.xid

    @property
    def in_subxact(self) -> bool:
        return bool(self.subxacts)

    def view(self) -> TxnView:
        """Visibility identity for tuple_visibility: every xid we ever
        used (the commit log filters rolled-back subxacts)."""
        return TxnView(xids=self.all_xids, curcid=self.curcid)

    def live_xids(self) -> List[int]:
        """Top-level xid, merged (released) subxact xids, and
        currently-open subxact xids: the set to mark committed."""
        xids = [self.xid] + list(self.merged_subs)
        for sub in self.subxacts:
            xids.append(sub.xid)
            xids.extend(sub.merged)
        return xids

    # -- statement lifecycle --------------------------------------------------
    def start_statement(self, snapshot: Optional[Snapshot] = None) -> None:
        self.curcid += 1
        if snapshot is not None:
            self.snapshot = snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Txn {self.xid} {self.isolation.value} "
                f"{self.status.value}>")
