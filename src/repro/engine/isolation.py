"""Isolation levels.

PostgreSQL 9.1's three levels (paper section 5.1), plus the strict
two-phase-locking mode the paper implemented as its comparison baseline
(section 8: "a simple implementation of strict two-phase locking for
PostgreSQL", reusing the predicate-lock machinery with blocking reads).
"""

from __future__ import annotations

import enum


class IsolationLevel(enum.Enum):
    #: New snapshot before every statement; first-updater-wins conflicts
    #: re-check the newest row version instead of erroring.
    READ_COMMITTED = "read committed"
    #: Snapshot isolation: one snapshot for the whole transaction
    #: (PostgreSQL's pre-9.1 "SERIALIZABLE").
    REPEATABLE_READ = "repeatable read"
    #: SSI: snapshot isolation plus runtime dangerous-structure checks.
    SERIALIZABLE = "serializable"
    #: Strict two-phase locking baseline: blocking reads, index-range
    #: locks, multigranularity intention locks, deadlock detection.
    #: All concurrent sessions must use this mode for its guarantee to
    #: hold (as in the paper's benchmark runs).
    S2PL = "s2pl"

    @property
    def snapshot_based(self) -> bool:
        return self is not IsolationLevel.S2PL

    @property
    def uses_ssi(self) -> bool:
        return self is IsolationLevel.SERIALIZABLE

    @property
    def statement_snapshot(self) -> bool:
        """Does each statement get a fresh snapshot?"""
        return self is IsolationLevel.READ_COMMITTED
