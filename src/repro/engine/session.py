"""Session: the per-connection public API.

Statements are PostgreSQL-flavoured:

* with no open transaction, each statement runs in its own implicit
  transaction (autocommit);
* a failed statement puts the transaction in the FAILED state and only
  ROLLBACK / ROLLBACK TO SAVEPOINT are accepted afterwards;
* statements that must wait raise :class:`repro.errors.WouldBlock`;
  the deterministic scheduler resumes them transparently, and direct
  callers may call :meth:`Session.resume` after resolving the
  conflict.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import AlwaysTrue, Predicate
from repro.engine.transaction import Subtransaction, Transaction, TxnStatus
from repro.errors import (InvalidTransactionStateError, RetryableError,
                          ReproError, SerializationFailure, WouldBlock)
from repro.locks.modes import LockMode
from repro.storage.tuple import TID

Updates = Union[Dict[str, Any], Callable[[Dict[str, Any]], Dict[str, Any]]]


def _compose(*gens) -> Iterator:
    result = None
    for gen in gens:
        result = yield from gen
    return result


class Session:
    """One client connection."""

    def __init__(self, db, session_id: int,
                 default_isolation: IsolationLevel) -> None:
        self.db = db
        self.session_id = session_id
        self.default_isolation = default_isolation
        self.txn: Optional[Transaction] = None
        self._pending: Optional[Iterator] = None
        self._pending_autocommit = False
        self._pending_is_begin = False
        #: Scheduler-driven sessions surface voluntary mid-scan Yields
        #: (repro.waits.Yield) as WouldBlock so clients interleave;
        #: direct callers run straight through them.
        self.cooperative = False
        #: Real-thread wait handler (repro.server). When set, a wait
        #: condition is handed to the hook -- which parks the calling
        #: OS thread on the engine latch's condition variable until the
        #: condition is ready (or raises a timeout error) -- and the
        #: statement then continues in place; WouldBlock is never
        #: raised. When None (the default, and always under the
        #: deterministic scheduler) behaviour is byte-identical to the
        #: seed. Yields reach the hook only when ``cooperative`` is
        #: also set, mirroring the scheduler contract.
        self.wait_hook: Optional[Callable[[Any], None]] = None

    # ------------------------------------------------------------------
    # transaction control
    # ------------------------------------------------------------------
    def begin(self, isolation: Optional[IsolationLevel] = None, *,
              read_only: bool = False, deferrable: bool = False
              ) -> Transaction:
        """BEGIN [ISOLATION LEVEL ...] [READ ONLY [, DEFERRABLE]].

        A DEFERRABLE transaction may suspend (WouldBlock) until a safe
        snapshot is available (section 4.3).
        """
        if self.txn is not None:
            raise InvalidTransactionStateError(
                "a transaction is already in progress")
        if self._pending is not None:
            raise InvalidTransactionStateError("a statement is suspended")
        iso = isolation or self.default_isolation
        gen = self.db.begin_gen(iso, read_only=read_only,
                                deferrable=deferrable)
        txn = self._drive(gen, autocommit=False, is_begin=True)
        return txn

    def commit(self) -> bool:
        """COMMIT. Returns True on a real commit; committing a FAILED
        transaction rolls back instead and returns False (PostgreSQL's
        behaviour for COMMIT after an error)."""
        txn = self._require_txn(allow_failed=True)
        self.txn = None
        self._pending = None
        if txn.status is TxnStatus.FAILED:
            txn.status = TxnStatus.ACTIVE
            self.db.abort_txn(txn)
            return False
        try:
            self.db.commit_txn(txn)
        except RetryableError:
            self.db.stats.serialization_failures += 1
            raise
        return True

    def rollback(self) -> None:
        txn = self._require_txn(allow_failed=True)
        self.txn = None
        self._pending = None
        if txn.status is TxnStatus.FAILED:
            txn.status = TxnStatus.ACTIVE
        self.db.abort_txn(txn)

    def prepare_transaction(self, gid: str) -> None:
        """PREPARE TRANSACTION 'gid' (two-phase commit, section 7.1)."""
        txn = self._require_txn()
        try:
            self.db.prepare_txn(txn, gid)
        except RetryableError:
            self.db.stats.serialization_failures += 1
            self.txn = None
            raise
        self.txn = None  # the prepared transaction detaches

    # -- savepoints (section 7.3) ----------------------------------------
    def savepoint(self, name: str) -> None:
        txn = self._require_txn()
        sub_xid = self.db.xids.assign()
        self.db.clog.register(sub_xid, parent=txn.current_xid)
        txn.subxacts.append(Subtransaction(name, sub_xid))
        txn.all_xids.add(sub_xid)
        if txn.sxact is not None:
            self.db.ssi.register_subxact(txn.sxact, sub_xid)

    def rollback_to_savepoint(self, name: str) -> None:
        """Aborts the subtransactions inside the savepoint. SIREAD
        locks acquired inside are kept: the data read may have been
        externalized (section 7.3)."""
        txn = self._require_txn(allow_failed=True)
        names = [s.name for s in txn.subxacts]
        if name not in names:
            raise InvalidTransactionStateError(f"no savepoint {name!r}")
        keep = names.index(name)
        dropped = txn.subxacts[keep:]
        txn.subxacts = txn.subxacts[:keep]
        doomed_xids = []
        for sub in dropped:
            doomed_xids.append(sub.xid)
            doomed_xids.extend(sub.merged)
        self.db.clog.set_aborted(doomed_xids)
        if txn.status is TxnStatus.FAILED:
            txn.status = TxnStatus.ACTIVE
        self._pending = None
        # Re-establish the savepoint itself (PostgreSQL keeps it).
        self.savepoint(name)

    def release_savepoint(self, name: str) -> None:
        txn = self._require_txn()
        names = [s.name for s in txn.subxacts]
        if name not in names:
            raise InvalidTransactionStateError(f"no savepoint {name!r}")
        # Subtransactions merge into their parent frame: they commit or
        # abort with it.
        keep = names.index(name)
        released = txn.subxacts[keep:]
        txn.subxacts = txn.subxacts[:keep]
        merged = []
        for sub in released:
            merged.append(sub.xid)
            merged.extend(sub.merged)
        if txn.subxacts:
            txn.subxacts[-1].merged.extend(merged)
        else:
            txn.merged_subs.extend(merged)

    # ------------------------------------------------------------------
    # DML statements
    # ------------------------------------------------------------------
    def select(self, table: str, where: Optional[Predicate] = None
               ) -> List[Dict[str, Any]]:
        pred = where or AlwaysTrue()
        return self._statement(
            table, LockMode.ACCESS_SHARE,
            lambda txn: self.db.executor.select_gen(txn, table, pred))

    def scan_rows(self, table: str, where: Optional[Predicate] = None
                  ) -> List[Dict[str, Any]]:
        """SELECT returning zero-copy row views (the vectorized read
        path; same visibility, locking, and ordering as select()).

        The returned dicts are the live heap tuples: callers MUST NOT
        mutate them or hold them across statements -- copy with
        ``dict(row)`` for anything longer-lived. The SQL layer uses
        this for aggregate/join inputs where the seed path's per-row
        dict copies dominate the profile.
        """
        pred = where or AlwaysTrue()
        return self._statement(
            table, LockMode.ACCESS_SHARE,
            lambda txn: self.db.executor.scan_rows_gen(txn, table, pred))

    def scan_aggregate(self, table: str, specs,
                       where: Optional[Predicate] = None) -> List[Any]:
        """Aggregate pushdown scan: fold ``specs`` -- (func, column)
        pairs, column None for COUNT(*) -- page-at-a-time during the
        scan and return one value per spec. Same visibility, locking,
        and conflict flagging as select(); no row list is built."""
        pred = where or AlwaysTrue()
        return self._statement(
            table, LockMode.ACCESS_SHARE,
            lambda txn: self.db.executor.scan_aggregate_gen(
                txn, table, pred, specs))

    def select_for_update(self, table: str,
                          where: Optional[Predicate] = None
                          ) -> List[Dict[str, Any]]:
        pred = where or AlwaysTrue()
        return self._statement(
            table, LockMode.ROW_SHARE,
            lambda txn: self.db.executor.select_for_update_gen(
                txn, table, pred))

    def insert(self, table: str, row: Dict[str, Any]) -> TID:
        return self._statement(
            table, LockMode.ROW_EXCLUSIVE,
            lambda txn: self.db.executor.insert_gen(txn, table, row))

    def update(self, table: str, where: Optional[Predicate],
               updates: Updates) -> int:
        pred = where or AlwaysTrue()
        return self._statement(
            table, LockMode.ROW_EXCLUSIVE,
            lambda txn: self.db.executor.update_gen(txn, table, pred,
                                                    updates))

    def delete(self, table: str, where: Optional[Predicate] = None) -> int:
        pred = where or AlwaysTrue()
        return self._statement(
            table, LockMode.ROW_EXCLUSIVE,
            lambda txn: self.db.executor.delete_gen(txn, table, pred))

    # ------------------------------------------------------------------
    # explicit locking and DDL
    # ------------------------------------------------------------------
    def lock_table(self, table: str,
                   mode: LockMode = LockMode.ACCESS_EXCLUSIVE) -> None:
        """LOCK TABLE: one of the paper's section 2.2 workarounds for
        snapshot isolation anomalies."""
        rel = self.db.relation(table)
        self._statement(table, mode, lambda txn: iter(()), ddl=False)

    def drop_index(self, index_name: str) -> None:
        """DROP INDEX: transfers surviving index-granularity SIREAD
        locks to the heap relation (section 5.2.1)."""
        rel, index = self.db.index_by_name(index_name)

        def action(txn):
            rel.drop_index(index_name)
            self.db.ssi.lockmgr.transfer_index_to_heap(index.oid, rel.oid)
            self.db.statscat.bump_epoch()  # access path gone: flush plans
            return None
            yield  # pragma: no cover

        self._statement(rel.name, LockMode.ACCESS_EXCLUSIVE, action)

    def analyze(self, table: Optional[str] = None):
        """ANALYZE: collect planner statistics (setup-time operation,
        like create_table; runs outside any transaction)."""
        return self.db.analyze(table)

    def explain(self, table: str, where: Optional[Predicate] = None):
        """EXPLAIN for an engine-API scan: the plan the next
        select/update/delete with this predicate would use."""
        from repro.engine.planner import explain_scan
        return explain_scan(self.db, self.db.relation(table),
                            where or AlwaysTrue())

    def recluster_table(self, table: str) -> None:
        """CLUSTER-style physical rewrite: tuples move, so page- and
        tuple-granularity SIREAD locks are promoted to relation
        granularity (section 5.2.1). Dead tuples are dropped and
        indexes rebuilt."""
        rel = self.db.relation(table)

        def action(txn):
            clog = self.db.clog
            horizon = min((t.snapshot.xmin
                           for t in self.db.active_transactions()
                           if t.snapshot is not None and t is not txn),
                          default=self.db.xids.next_xid)
            from repro.mvcc.visibility import tuple_is_dead

            def keep(tup):
                if clog.did_abort(tup.xmin):  # repro: noqa(CLOG001) -- CLUSTER rewrite drops aborted inserts regardless of snapshot
                    return False
                return not tuple_is_dead(tup, horizon, clog)

            # Note: surviving versions lose their forward ctid chain;
            # harmless because the ACCESS EXCLUSIVE lock guarantees no
            # in-flight writers, and post-DDL writers target the
            # newest version directly.
            rel.heap = rel.heap.rewrite(keep)
            for name in list(rel.indexes):
                old = rel.indexes.pop(name)
                rel.indexes[name] = self._rebuild_index(rel, old)
            self.db.ssi.lockmgr.promote_for_rewrite(
                rel.oid, [i.oid for i in rel.indexes.values()])
            self.db.statscat.bump_epoch()  # rewrite: stats + plans stale
            return None
            yield  # pragma: no cover

        self._statement(table, LockMode.ACCESS_EXCLUSIVE, action)

    def _rebuild_index(self, rel, old):
        from repro.index import BTreeIndex, HashIndex
        if isinstance(old, HashIndex):
            new = HashIndex(old.oid, old.name, old.column, unique=old.unique)
        else:
            new = BTreeIndex(old.oid, old.name, old.column, unique=old.unique,
                             page_size=self.db.config.btree_page_size)
        for tup in rel.heap.scan():
            new.insert_entry(tup.data.get(old.column), tup.tid)
        return new

    # ------------------------------------------------------------------
    # statement machinery
    # ------------------------------------------------------------------
    def _require_txn(self, allow_failed: bool = False) -> Transaction:
        if self.txn is None:
            raise InvalidTransactionStateError("no transaction in progress")
        if self.txn.status is TxnStatus.FAILED and not allow_failed:
            raise InvalidTransactionStateError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block")
        if self.txn.status not in (TxnStatus.ACTIVE, TxnStatus.FAILED):
            raise InvalidTransactionStateError(
                f"transaction is {self.txn.status.value}")
        return self.txn

    def _table_lock_gen(self, txn: Transaction, table: str,
                        mode: LockMode) -> Iterator:
        rel = self.db.relation(table)
        request = self.db.lockmgr.acquire(txn.xid, ("rel", rel.oid), mode)  # repro: noqa(LOCK002) -- table lock held to txn end, released by release_all at commit/abort
        while request is not None and not request.granted:
            yield request

    def _statement(self, table: str, lock_mode: LockMode,
                   gen_factory, ddl: bool = False):
        if self._pending is not None:
            raise InvalidTransactionStateError(
                "a statement is suspended; resume() it first")
        autocommit = self.txn is None
        if autocommit:
            self.begin(self.default_isolation)
        txn = self._require_txn()
        txn.start_statement(self.db.take_snapshot()
                            if txn.isolation.statement_snapshot else None)
        self.db.stats.statements += 1
        gen = _compose(self._table_lock_gen(txn, table, lock_mode),
                       gen_factory(txn))
        return self._drive(gen, autocommit=autocommit)

    def _next_condition(self, gen: Iterator):
        """Advance ``gen`` to the next wait condition that must surface
        as WouldBlock. Skips Yields for non-cooperative direct callers;
        hands every condition to ``wait_hook`` (which blocks the real
        thread until ready) when one is installed, in which case the
        generator runs to completion and StopIteration propagates."""
        from repro.waits import Yield
        condition = next(gen)
        while True:
            if isinstance(condition, Yield) and not self.cooperative:
                condition = next(gen)
            elif self.wait_hook is not None:
                self.wait_hook(condition)
                condition = next(gen)
            else:
                return condition

    def _drive(self, gen: Iterator, autocommit: bool,
               is_begin: bool = False):
        try:
            condition = self._next_condition(gen)
        except StopIteration as stop:
            return self._finish_statement(stop.value, autocommit, is_begin)
        except ReproError as exc:
            self._statement_failed(autocommit, exc)
            raise
        self._pending = gen
        self._pending_autocommit = autocommit
        self._pending_is_begin = is_begin
        raise WouldBlock(condition, session=self)

    def resume(self):
        """Continue a suspended statement after its wait condition
        cleared (or to re-check it)."""
        if self._pending is None:
            raise InvalidTransactionStateError("no suspended statement")
        gen = self._pending
        try:
            condition = self._next_condition(gen)
        except StopIteration as stop:
            autocommit = self._pending_autocommit
            is_begin = self._pending_is_begin
            self._pending = None
            return self._finish_statement(stop.value, autocommit, is_begin)
        except ReproError as exc:
            autocommit = self._pending_autocommit
            self._pending = None
            self._statement_failed(autocommit, exc)
            raise
        raise WouldBlock(condition, session=self)

    @property
    def blocked(self) -> bool:
        return self._pending is not None

    def _finish_statement(self, value, autocommit: bool, is_begin: bool):
        self._pending = None
        if is_begin:
            self.txn = value
            return value
        if autocommit:
            self.commit()
        return value

    def _statement_failed(self, autocommit: bool,
                          exc: Optional[Exception] = None) -> None:
        """A statement raised: the transaction enters the FAILED state
        (autocommit transactions roll back immediately)."""
        if isinstance(exc, RetryableError):
            self.db.stats.serialization_failures += 1
            if self.db.obs.tracer is not None:
                self.db.obs.tracer.emit(
                    "stmt.fail", self.txn.xid if self.txn else None,
                    session=self.session_id, error=type(exc).__name__,
                    sqlstate=getattr(exc, "sqlstate", None))
        txn = self.txn
        if txn is None:
            return
        if txn.status is TxnStatus.ACTIVE:
            txn.status = TxnStatus.FAILED
        if autocommit:
            self.rollback()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def in_transaction(self) -> bool:
        return self.txn is not None

    def run_transaction(self, fn, isolation: Optional[IsolationLevel] = None,
                        *, max_retries: int = 50, read_only: bool = False):
        """Execute ``fn(session)`` in a transaction, retrying on
        serialization failures and deadlocks -- the middleware retry
        layer the paper assumes (section 3.3). Relies on the safe-retry
        property (section 5.4) to make progress."""
        attempts = 0
        while True:
            attempts += 1
            try:
                self.begin(isolation, read_only=read_only)
                result = fn(self)
                self.commit()
                return result
            except RetryableError:
                if self.txn is not None:
                    self.rollback()
                if attempts > max_retries:
                    raise
