"""Generator-based statement executors.

Every executor is a generator that yields wait conditions (lock
requests, xid waits) when it must block and *returns* the statement
result. Statements are therefore resumable mid-flight -- partial work
is never re-applied -- which mirrors how PostgreSQL continues a
statement after a lock wait rather than restarting it.

Semantics implemented here:

* snapshot reads with per-tuple visibility classification feeding SSI
  (section 5.2's write-before-read conflicts);
* index scans that SIREAD-lock visited B+-tree pages (gap locks) or
  fall back to whole-index locks for AMs without predicate-lock
  support (section 7.4);
* first-updater-wins write conflicts: waiting on the in-progress
  holder via an xid lock (deadlock-detected), then either failing
  ("could not serialize access due to concurrent update", REPEATABLE
  READ / SERIALIZABLE) or re-checking the newest version EvalPlanQual
  style (READ COMMITTED);
* the S2PL baseline's blocking read/write/gap locks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro import s2pl
from repro.engine.batch import (BatchAggregator, TupleBatch,
                                compile_batch_filter)
from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import AlwaysTrue, Predicate
from repro.engine.transaction import Transaction
from repro.errors import (AbortCause, ReadOnlyTransactionError,
                          SerializationFailure, UndefinedColumnError,
                          UniqueViolationError)
from repro.locks.modes import LockMode
from repro.mvcc.visibility import ALL_VISIBLE, tuple_visibility
from repro.mvcc.xid import INVALID_XID
from repro.storage.relation import Relation
from repro.storage.tuple import HeapTuple
from repro.waits import YIELD

Updates = Union[Dict[str, Any], Callable[[Dict[str, Any]], Dict[str, Any]]]


class Executor:
    """Stateless executor bound to a Database."""

    def __init__(self, db) -> None:
        self.db = db

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _touch(self, oid: int, page_no: int) -> None:
        self.db.buffer.touch(oid, page_no)

    def _wait_for_xid(self, txn: Transaction, other_top_xid: int) -> Iterator:
        """Block until another top-level transaction finishes: SHARE on
        its xid lock (PostgreSQL's mechanism, so write-write deadlocks
        are caught by the ordinary deadlock detector)."""
        tag = ("xid", other_top_xid)
        request = self.db.lockmgr.acquire(txn.xid, tag, LockMode.SHARE)
        while request is not None and not request.granted:
            yield request
        self.db.lockmgr.release(txn.xid, tag, LockMode.SHARE)

    def _require_writable(self, txn: Transaction) -> None:
        if txn.read_only:
            raise ReadOnlyTransactionError(
                "cannot execute writes in a read-only transaction")

    def _validate_columns(self, rel: Relation, row: Dict[str, Any]) -> None:
        unknown = set(row) - set(rel.columns)
        if unknown:
            raise UndefinedColumnError(
                f"column(s) {sorted(unknown)} not in relation {rel.name}")

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def _plan_index(self, rel: Relation, pred: Predicate):
        """Scan choice, delegated to the planner (repro.engine.planner):
        cost-based over ANALYZE statistics when available, the seed's
        rule-based first-sargable-conjunct behaviour otherwise, with an
        engine-level plan cache in front of both."""
        return self.db.planner.plan_scan(rel, pred)

    def _scan(self, txn: Transaction, rel: Relation,
              pred: Predicate) -> Iterator:
        """Yields waits; returns the list of visible matching tuples."""
        if txn.isolation.snapshot_based:
            # The batch path is disabled while a tracer is installed so
            # per-tuple read events keep appearing in traces (the same
            # rule as the visibility-map shortcut below).
            if self.db.use_vectorized and self.db.obs.tracer is None:
                result = yield from self._scan_snapshot_vec(txn, rel, pred)
            else:
                result = yield from self._scan_snapshot(txn, rel, pred)
        else:
            result = yield from self._scan_s2pl(txn, rel, pred)
        self.db.record_read(txn, rel, pred, result)
        return result

    def _scan_snapshot(self, txn: Transaction, rel: Relation,
                       pred: Predicate) -> Iterator:
        db = self.db
        sx = txn.sxact
        out: List[HeapTuple] = []
        yield_pages = max(1, db.config.scan_yield_pages)
        snapshot = txn.snapshot
        view = txn.view()
        clog = db.clog
        use_hints = db.use_hint_bits
        hint_counter = db.hint_counter
        # The visibility-map shortcuts are disabled while a tracer is
        # installed so per-tuple read events keep appearing in traces.
        use_vm = db.use_vismap and db.obs.tracer is None
        vismap = rel.heap.vismap
        index, rng = self._plan_index(rel, pred)
        if index is not None:
            if rng.is_equality:
                res = index.search(rng.lo)
            else:
                res = index.range_search(rng.lo, rng.hi, rng.lo_incl,
                                         rng.hi_incl)
            if index.supports_predicate_locks:
                for page_no in res.visited_pages:
                    self._touch(index.oid, page_no)
                if (db.config.ssi.index_locking == "nextkey"
                        and index.supports_key_locking):
                    db.ssi.on_index_scan_keys(sx, index.oid, res)
                else:
                    # Page/node granularity; for GiST this includes the
                    # internal nodes visited (section 7.4).
                    for page_no in res.visited_pages:
                        db.ssi.on_index_page_read(sx, index.oid, page_no)
            else:
                db.ssi.on_index_rel_read(sx, index.oid)
            for n, tid in enumerate(res.tids):
                if n and n % (yield_pages * 8) == 0:
                    yield YIELD
                tup = rel.heap.fetch(tid)
                if tup is None:
                    continue
                self._touch(rel.oid, tid.page)
                db.stats.tuples_read += 1
                if use_vm and vismap.is_all_visible(tid.page):
                    # All-visible page: no visibility check needed. The
                    # tuple SIREAD lock is still needed (no coarse lock
                    # covers an index scan), so SSI still runs.
                    vis = ALL_VISIBLE
                    db.vismap_counter.inc()
                else:
                    vis = tuple_visibility(tup, snapshot, view, clog,
                                           use_hints, hint_counter)
                db.ssi.on_read_tuple(sx, rel.oid, tup, vis)
                if vis.visible and pred.matches(tup.data):
                    out.append(tup)
        else:
            db.ssi.on_scan_relation(sx, rel.oid)
            for page_no, page in enumerate(rel.heap.scan_pages()):
                if page_no and page_no % yield_pages == 0:
                    yield YIELD
                self._touch(rel.oid, page.page_no)
                if use_vm and vismap.is_all_visible(page.page_no):
                    # All-visible page under a sequential scan: every
                    # tuple is visible (no MVCC checks), and the
                    # relation SIREAD lock taken by on_scan_relation
                    # above already covers every tuple on the page, so
                    # the per-tuple SSI calls are pure no-ops too.
                    n = 0
                    for tup in page.tuples():
                        n += 1
                        if pred.matches(tup.data):
                            out.append(tup)
                    db.stats.tuples_read += n
                    db.vismap_counter.inc()
                    continue
                for tup in list(page.tuples()):
                    db.stats.tuples_read += 1
                    vis = tuple_visibility(tup, snapshot, view, clog,
                                           use_hints, hint_counter)
                    db.ssi.on_read_tuple(sx, rel.oid, tup, vis)
                    if vis.visible and pred.matches(tup.data):
                        out.append(tup)
        return out

    def _scan_snapshot_vec(self, txn: Transaction, rel: Relation,
                           pred: Predicate, sink=None) -> Iterator:
        """Batch (page-at-a-time) variant of :meth:`_scan_snapshot`.

        Returns the same tuples in the same order, takes the same
        SIREAD locks, flags the same rw-conflicts, and yields at the
        same points (page boundaries / every ``yield_pages * 8`` index
        entries), so schedules recorded against the per-tuple path
        replay identically. What changes: the live tuples of a page
        are pulled into one TupleBatch, the predicate is a compiled
        batch filter, stat increments are batched, and the SSI
        read-coverage fast path is checked once per page instead of
        once per tuple (see SSIManager.read_page_covered for why that
        is equivalent).

        ``sink``, when given, receives each page's matched tuples (in
        scan order) instead of them being accumulated into the result
        list -- the aggregate pushdown hook (see scan_aggregate_gen).
        The return value is then an empty list.
        """
        db = self.db
        sx = txn.sxact
        out: List[HeapTuple] = []
        collect = out.extend if sink is None else sink
        yield_pages = max(1, db.config.scan_yield_pages)
        snapshot = txn.snapshot
        view = txn.view()
        clog = db.clog
        use_hints = db.use_hint_bits
        hint_counter = db.hint_counter
        use_vm = db.use_vismap  # tracer already ruled out by caller
        vismap = rel.heap.vismap
        stats = db.stats
        ssi = db.ssi
        #: Counter equivalence: the per-tuple path only counts fastpath
        #: hits for transactions that reach the fast-path check at all.
        counting = sx is not None and not sx.ro_safe
        match = compile_batch_filter(pred)
        index, rng = self._plan_index(rel, pred)
        if index is not None:
            if rng.is_equality:
                res = index.search(rng.lo)
            else:
                res = index.range_search(rng.lo, rng.hi, rng.lo_incl,
                                         rng.hi_incl)
            if index.supports_predicate_locks:
                for page_no in res.visited_pages:
                    self._touch(index.oid, page_no)
                if (db.config.ssi.index_locking == "nextkey"
                        and index.supports_key_locking):
                    ssi.on_index_scan_keys(sx, index.oid, res)
                else:
                    for page_no in res.visited_pages:
                        ssi.on_index_page_read(sx, index.oid, page_no)
            else:
                ssi.on_index_rel_read(sx, index.oid)
            # Index batches: the tid list in yield-cadence chunks. The
            # per-tuple SIREAD lock is still required (no coarse lock
            # covers an index scan), so SSI runs per tuple; the batch
            # win is amortized vismap lookups and stat increments.
            # Counter attribution must stay window-exact: the simulated
            # clock charges per-yield deltas, so `seen` flushes before
            # every YIELD, and the vismap cache resets there too (the
            # map can only change across a yield, never within one).
            fetch = rel.heap.fetch
            matches = pred.matches
            vm_cache: Dict[int, bool] = {}
            seen = 0
            hits: List[HeapTuple] = []
            try:
                for n, tid in enumerate(res.tids):
                    if n and n % (yield_pages * 8) == 0:
                        stats.tuples_read += seen
                        seen = 0
                        vm_cache.clear()
                        yield YIELD
                    tup = fetch(tid)
                    if tup is None:
                        continue
                    self._touch(rel.oid, tid.page)
                    seen += 1
                    if use_vm:
                        all_vis = vm_cache.get(tid.page)
                        if all_vis is None:
                            all_vis = vismap.is_all_visible(tid.page)
                            vm_cache[tid.page] = all_vis
                    else:
                        all_vis = False
                    if all_vis:
                        vis = ALL_VISIBLE
                        db.vismap_counter.inc()
                    else:
                        vis = tuple_visibility(tup, snapshot, view, clog,
                                               use_hints, hint_counter)
                    ssi.on_read_tuple(sx, rel.oid, tup, vis)
                    if vis.visible and matches(tup.data):
                        hits.append(tup)
            finally:
                # Flush even when on_read_tuple aborts the transaction
                # mid-scan: the per-tuple path counts eagerly, so the
                # tuples processed before (and including) the aborting
                # one are already on its meter for this window.
                stats.tuples_read += seen
            collect(hits)
        else:
            ssi.on_scan_relation(sx, rel.oid)
            for page_no, page in enumerate(rel.heap.scan_pages()):
                if page_no and page_no % yield_pages == 0:
                    yield YIELD
                self._touch(rel.oid, page.page_no)
                live = page.live_tuples()
                if use_vm and vismap.is_all_visible(page.page_no):
                    # All-visible page: no MVCC checks, and the
                    # relation SIREAD lock from on_scan_relation covers
                    # every tuple, so SSI is a no-op -- the whole page
                    # reduces to one compiled batch filter.
                    batch = TupleBatch(rel.oid, page.page_no, live,
                                       all_visible=True)
                    collect(match(batch.tuples))
                    stats.tuples_read += len(live)
                    db.vismap_counter.inc()
                    continue
                covered = ssi.read_page_covered(sx, rel.oid, page.page_no)
                skipped = 0
                done = 0
                page_hits: List[HeapTuple] = []
                try:
                    for tup in live:
                        done += 1
                        vis = tuple_visibility(tup, snapshot, view, clog,
                                               use_hints, hint_counter)
                        if (covered and vis.visible
                                and not vis.deleter_concurrent):
                            # Same skip rule as on_read_tuple's fast
                            # path, hoisted: coverage is page-keyed and
                            # doom was checked by read_page_covered.
                            skipped += 1
                        else:
                            ssi.on_read_tuple(sx, rel.oid, tup, vis)
                        if vis.visible and pred.matches(tup.data):
                            page_hits.append(tup)
                finally:
                    # Flush even when on_read_tuple aborts mid-page, so
                    # this window's counters match the per-tuple path's
                    # eager increments (done == len(live) on success).
                    stats.tuples_read += done
                    if skipped and counting:
                        ssi.note_fastpath_hits(skipped)
                collect(page_hits)
        return out

    def _scan_s2pl(self, txn: Transaction, rel: Relation,
                   pred: Predicate) -> Iterator:
        db = self.db
        out: List[HeapTuple] = []
        yield_pages = max(1, db.config.scan_yield_pages)
        index, rng = self._plan_index(rel, pred)
        if index is not None:
            yield from s2pl.locking.lock_relation_read_intent(
                db.lockmgr, txn.xid, rel.oid)
            if rng.is_equality:
                res = index.search(rng.lo)
            else:
                res = index.range_search(rng.lo, rng.hi, rng.lo_incl,
                                         rng.hi_incl)
            if index.supports_predicate_locks:
                for page_no in res.visited_pages:
                    self._touch(index.oid, page_no)
                    yield from s2pl.lock_index_page_read(
                        db.lockmgr, txn.xid, index.oid, page_no)
            else:
                # No gap locking possible: lock the whole relation.
                yield from s2pl.lock_relation_read(db.lockmgr, txn.xid,
                                                   rel.oid)
            seen = set()
            for n, tid in enumerate(res.tids):
                if n and n % (yield_pages * 8) == 0:
                    yield YIELD
                # Follow the version chain to the newest committed
                # version: the tid list may predate a concurrent
                # same-key update that committed while we waited for
                # the tuple lock. The chain may also lead to a version
                # another index entry reaches directly, hence `seen`.
                cur_tid = tid
                while cur_tid is not None and cur_tid not in seen:
                    seen.add(cur_tid)
                    yield from s2pl.lock_tuple_read(db.lockmgr, txn.xid,
                                                    rel.oid, cur_tid)
                    tup = rel.heap.fetch(cur_tid)
                    if tup is None:
                        break
                    self._touch(rel.oid, cur_tid.page)
                    db.stats.tuples_read += 1
                    if s2pl.s2pl_visible(tup, txn.view(), db.clog):
                        if pred.matches(tup.data):
                            out.append(tup)
                        break
                    if (tup.xmax != INVALID_XID and not tup.xmax_lock_only
                            and db.clog.did_commit(tup.xmax)):  # repro: noqa(CLOG001) -- ctid chain walk follows only committed deleters
                        cur_tid = tup.next_tid
                    else:
                        break
        else:
            yield from s2pl.lock_relation_read(db.lockmgr, txn.xid, rel.oid)
            for page_no, page in enumerate(rel.heap.scan_pages()):
                if page_no and page_no % yield_pages == 0:
                    yield YIELD
                self._touch(rel.oid, page.page_no)
                for tup in list(page.tuples()):
                    db.stats.tuples_read += 1
                    if (s2pl.s2pl_visible(tup, txn.view(), db.clog)
                            and pred.matches(tup.data)):
                        out.append(tup)
        return out

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def select_gen(self, txn: Transaction, rel_name: str,
                   pred: Predicate) -> Iterator:
        rel = self.db.relation(rel_name)
        tuples = yield from self._scan(txn, rel, pred)
        return [dict(t.data) for t in tuples]

    def scan_rows_gen(self, txn: Transaction, rel_name: str,
                      pred: Predicate) -> Iterator:
        """Like select_gen but returns the live heap row dicts without
        copying (the vectorized read path). Callers must treat the
        rows as read-only views that do not outlive the statement."""
        rel = self.db.relation(rel_name)
        tuples = yield from self._scan(txn, rel, pred)
        return [t.data for t in tuples]

    def scan_aggregate_gen(self, txn: Transaction, rel_name: str,
                           pred: Predicate, specs) -> Iterator:
        """Vectorized aggregate pushdown: fold COUNT/SUM/MIN/MAX/AVG
        page-at-a-time *during* the scan instead of materializing the
        matching rows first. The scan itself is _scan_snapshot_vec with
        a sink, so it takes the same SIREAD locks, flags the same
        rw-conflicts and yields at the same points as a plain scan --
        only the result shape changes (one value per (func, column)
        spec). Falls back to scan-then-fold whenever the batch scan is
        unavailable (per-tuple executor, tracer installed, non-snapshot
        isolation) or a schedule recorder needs the tid list; both
        routes return identical values (see BatchAggregator)."""
        db = self.db
        rel = db.relation(rel_name)
        agg = BatchAggregator(specs)
        if (txn.isolation.snapshot_based and db.use_vectorized
                and db.obs.tracer is None and db.recorder is None):
            yield from self._scan_snapshot_vec(txn, rel, pred,
                                               sink=agg.update)
        else:
            tuples = yield from self._scan(txn, rel, pred)
            agg.update(tuples)
        return agg.finalize()

    def select_for_update_gen(self, txn: Transaction, rel_name: str,
                              pred: Predicate) -> Iterator:
        """SELECT ... FOR UPDATE: tuple locks via the xmax field with
        the lock-only bit (paper section 5.1, "tuple locks")."""
        self._require_writable(txn)
        rel = self.db.relation(rel_name)
        candidates = yield from self._scan(txn, rel, pred)
        rows: List[Dict[str, Any]] = []
        for tup in candidates:
            target = yield from self._claim_tuple(txn, rel, tup, pred,
                                                  lock_only=True)
            if target is not None:
                rows.append(dict(target.data))
        return rows

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def insert_gen(self, txn: Transaction, rel_name: str,
                   row: Dict[str, Any]) -> Iterator:
        self._require_writable(txn)
        db = self.db
        rel = db.relation(rel_name)
        self._validate_columns(rel, row)
        for index in rel.indexes.values():
            if index.unique:
                yield from self._unique_check(txn, rel, index,
                                              row.get(index.column))
        if txn.isolation is IsolationLevel.S2PL:
            yield from s2pl.locking.lock_relation_write_intent(
                db.lockmgr, txn.xid, rel.oid)
        tup = rel.heap.insert(row, txn.current_xid, txn.curcid)
        self._touch(rel.oid, tup.tid.page)
        db.stats.tuples_written += 1
        db.ssi.on_write_tuple(txn.sxact, rel.oid, tup.tid,
                              in_subxact=txn.in_subxact)
        if txn.isolation is IsolationLevel.S2PL:
            yield from s2pl.lock_tuple_write(db.lockmgr, txn.xid, rel.oid,
                                             tup.tid)
        yield from self._insert_index_entries(txn, rel, tup)
        txn.wal_changes.append(("insert", rel.name, None, dict(row)))
        db.record_write(txn, rel, "insert", None, tup)
        return tup.tid

    def _insert_index_entries(self, txn: Transaction, rel: Relation,
                              tup: HeapTuple,
                              old_data: Optional[Dict[str, Any]] = None
                              ) -> Iterator:
        """Insert index entries for a new tuple version.

        When ``old_data`` is given (UPDATE), indexes whose key did not
        change skip the gap-lock conflict check: no new key enters any
        scanned range (PostgreSQL reaches the same effect through HOT
        updates), and the heap tuple SIREAD locks cover value changes.
        """
        db = self.db
        for index in rel.indexes.values():
            key = tup.data.get(index.column)
            key_changed = (old_data is None
                           or old_data.get(index.column) != key)
            result = index.insert_entry(key, tup.tid)
            for page_no in result.leaf_pages:
                self._touch(index.oid, page_no)
            db.ssi.on_index_insert(
                txn.sxact, index.oid, result, check_conflicts=key_changed,
                key_locking_ok=index.supports_key_locking)
            if txn.isolation is IsolationLevel.S2PL and key_changed:
                if index.supports_predicate_locks:
                    for page_no in result.leaf_pages:
                        yield from s2pl.lock_index_page_write(
                            db.lockmgr, txn.xid, index.oid, page_no)
                # (AMs without page structure are covered by the
                # relation-level read locks scanners take.)

    def _unique_check(self, txn: Transaction, rel: Relation, index,
                      key: Any) -> Iterator:
        """Enforce uniqueness across all potentially-live versions,
        waiting out in-progress writers of duplicates."""
        db = self.db
        while True:
            blocker: Optional[int] = None
            for tid in index.search(key).tids:
                tup = rel.heap.fetch(tid)
                if tup is None or tup.data.get(index.column) != key:
                    continue
                db.stats.tuples_read += 1
                status = self._live_duplicate_status(txn, tup)
                if status == "dup":
                    raise UniqueViolationError(
                        f"duplicate key value violates unique constraint "
                        f"{index.name!r}: {index.column}={key!r}")
                if isinstance(status, int):
                    blocker = status
                    break
            if blocker is None:
                return
            yield from self._wait_for_xid(txn, blocker)

    def _live_duplicate_status(self, txn: Transaction,
                               tup: HeapTuple) -> Union[str, int, None]:
        """None = dead/deleted; "dup" = live duplicate; int = top-level
        xid of an in-progress writer to wait for."""
        clog = self.db.clog
        xmin = tup.xmin
        if clog.did_abort(xmin):  # repro: noqa(CLOG001) -- write-conflict resolution needs raw status to pick wait target
            return None
        creator_mine = xmin in txn.all_xids
        if not creator_mine and not clog.did_commit(xmin):  # repro: noqa(CLOG001) -- in-progress inserter => wait on its top-level xid
            return clog.top_level_of(xmin)  # in-progress inserter
        xmax = tup.xmax
        if xmax == INVALID_XID or tup.xmax_lock_only or clog.did_abort(xmax):  # repro: noqa(CLOG001) -- aborted deleter makes the key live again (duplicate)
            return "dup"
        if xmax in txn.all_xids:
            return None  # we deleted it ourselves
        if clog.did_commit(xmax):  # repro: noqa(CLOG001) -- committed deleter: key free, no conflict
            return None
        return clog.top_level_of(xmax)  # in-progress deleter

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------
    def update_gen(self, txn: Transaction, rel_name: str, pred: Predicate,
                   updates: Updates) -> Iterator:
        self._require_writable(txn)
        db = self.db
        rel = db.relation(rel_name)
        candidates = yield from self._scan(txn, rel, pred)
        count = 0
        for tup in candidates:
            target = yield from self._claim_tuple(txn, rel, tup, pred,
                                                  lock_only=False)
            if target is None:
                continue
            new_data = dict(target.data)
            if callable(updates):
                new_data.update(updates(dict(target.data)))
            else:
                new_data.update(updates)
            self._validate_columns(rel, new_data)
            for index in rel.indexes.values():
                if (index.unique and new_data.get(index.column)
                        != target.data.get(index.column)):
                    yield from self._unique_check(txn, rel, index,
                                                  new_data.get(index.column))
            new_tup = rel.heap.insert(new_data, txn.current_xid, txn.curcid)
            target.next_tid = new_tup.tid
            self._touch(rel.oid, new_tup.tid.page)
            db.stats.tuples_written += 1
            db.ssi.on_write_tuple(txn.sxact, rel.oid, target.tid,
                                  in_subxact=txn.in_subxact)
            db.ssi.on_write_tuple(txn.sxact, rel.oid, new_tup.tid,
                                  in_subxact=txn.in_subxact)
            if txn.isolation is IsolationLevel.S2PL:
                yield from s2pl.lock_tuple_write(db.lockmgr, txn.xid,
                                                 rel.oid, new_tup.tid)
            yield from self._insert_index_entries(txn, rel, new_tup,
                                                  old_data=target.data)
            txn.wal_changes.append(("update", rel.name, dict(target.data),
                                    dict(new_data)))
            db.record_write(txn, rel, "update", target, new_tup)
            count += 1
        return count

    def delete_gen(self, txn: Transaction, rel_name: str,
                   pred: Predicate) -> Iterator:
        self._require_writable(txn)
        db = self.db
        rel = db.relation(rel_name)
        candidates = yield from self._scan(txn, rel, pred)
        count = 0
        for tup in candidates:
            target = yield from self._claim_tuple(txn, rel, tup, pred,
                                                  lock_only=False)
            if target is None:
                continue
            db.stats.tuples_written += 1
            db.ssi.on_write_tuple(txn.sxact, rel.oid, target.tid,
                                  in_subxact=txn.in_subxact)
            txn.wal_changes.append(("delete", rel.name, dict(target.data),
                                    None))
            db.record_write(txn, rel, "delete", target, None)
            count += 1
        return count

    # ------------------------------------------------------------------
    # write-conflict resolution (first-updater-wins)
    # ------------------------------------------------------------------
    def _claim_tuple(self, txn: Transaction, rel: Relation, tup: HeapTuple,
                     pred: Predicate, *, lock_only: bool) -> Iterator:
        """Claim ``tup`` for writing by stamping our xid into its xmax.

        Returns the claimed version (READ COMMITTED may hop to a newer
        one, EvalPlanQual style) or None when the row should be
        skipped. Raises SerializationFailure on a lost
        first-updater-wins race under snapshot isolation semantics.
        """
        if txn.isolation is IsolationLevel.S2PL:
            result = yield from self._claim_tuple_s2pl(txn, rel, tup, pred,
                                                       lock_only=lock_only)
            return result
        db = self.db
        clog = db.clog
        cur = tup
        while True:
            xmax = cur.xmax
            effective_lock_only = cur.xmax_lock_only
            claimable = (
                xmax == INVALID_XID
                or clog.did_abort(xmax)  # repro: noqa(CLOG001) -- first-updater-wins: aborted deleter is claimable
                or (effective_lock_only
                    and (xmax in txn.all_xids or not clog.in_progress(xmax))))  # repro: noqa(CLOG001) -- finished locker's FOR UPDATE no longer blocks
            if claimable:
                if not pred.matches(cur.data):
                    return None  # EvalPlanQual re-check failed
                rel.heap.vismap.clear(cur.tid.page)
                cur.set_deleter(txn.current_xid, txn.curcid,
                                lock_only=lock_only)
                return cur
            if xmax in txn.all_xids:
                if effective_lock_only:
                    # Upgrading our own FOR UPDATE lock.
                    rel.heap.vismap.clear(cur.tid.page)
                    cur.set_deleter(txn.current_xid, txn.curcid,
                                    lock_only=lock_only)
                    return cur
                # Already updated/deleted by this transaction (this or
                # an earlier command): nothing more to do here.
                return None
            top = clog.top_level_of(xmax)
            if not clog.did_commit(xmax):  # repro: noqa(CLOG001) -- must wait on in-progress writer, not read through it
                # In-progress writer holds the tuple lock: wait for its
                # transaction to finish, then re-evaluate.
                yield from self._wait_for_xid(txn, top)
                continue
            if effective_lock_only:
                continue  # committed FOR UPDATE lock: re-evaluate
            # A concurrent transaction committed an update/delete of
            # this row first.
            if txn.isolation is not IsolationLevel.READ_COMMITTED:
                db.stats.update_conflicts += 1
                db.obs.metrics.counter(
                    "ssi.aborts", cause=AbortCause.UPDATE_CONFLICT.value).inc()
                if db.obs.tracer is not None:
                    db.obs.tracer.emit("abort.raise", txn.xid,
                                       cause=AbortCause.UPDATE_CONFLICT.value,
                                       writer_xid=top)
                raise SerializationFailure(
                    "could not serialize access due to concurrent update",
                    reason="concurrent update",
                    cause=AbortCause.UPDATE_CONFLICT)
            if cur.next_tid is None:
                return None  # row deleted; skip
            nxt = rel.heap.fetch(cur.next_tid)
            if nxt is None:
                return None
            db.stats.tuples_read += 1
            cur = nxt  # EvalPlanQual: chase the newest version

    def _claim_tuple_s2pl(self, txn: Transaction, rel: Relation,
                          tup: HeapTuple, pred: Predicate, *,
                          lock_only: bool) -> Iterator:
        db = self.db
        cur = tup
        while True:
            yield from s2pl.lock_tuple_write(db.lockmgr, txn.xid, rel.oid,
                                             cur.tid)
            # With the X lock held the version chain is frozen; chase to
            # the newest committed state (a writer may have superseded
            # this version while we waited for the lock).
            if not s2pl.s2pl_visible(cur, txn.view(), db.clog):
                if cur.next_tid is None:
                    return None
                nxt = rel.heap.fetch(cur.next_tid)
                if nxt is None:
                    return None
                cur = nxt
                continue
            if not pred.matches(cur.data):
                return None
            if cur.xmax != INVALID_XID and cur.xmax in txn.all_xids \
                    and not cur.xmax_lock_only:
                return None  # already written by us
            rel.heap.vismap.clear(cur.tid.page)
            cur.set_deleter(txn.current_xid, txn.curcid, lock_only=lock_only)
            return cur
