"""Cost-based scan planning.

Scan choice is SSI-relevant (paper section 5.2): an index scan
SIREAD-locks only the B+-tree pages it visits, a sequential scan takes
a whole-relation lock, so a poor plan inflates the predicate-lock
footprint and with it the false-positive abort rate. This module
replaces the executor's first-sargable-conjunct rule with a planner
that

* prices a sequential scan against every candidate index scan using
  **page-touch** and **tuple-visibility** cost units (the same events
  the buffer manager and ``engine.tuples_read`` count), fed by the
  ANALYZE statistics in :mod:`repro.storage.stats`;
* picks the cheapest access path -- in particular the *most selective*
  sargable conjunct of an AND, not the first;
* memoizes the choice in a bounded LRU **plan cache** keyed by
  (relation oid, stats epoch, predicate shape), so the statement hot
  path plans once per shape; ANALYZE/DDL bump the epoch, which
  invalidates every entry by key mismatch;
* falls back to the rule-based seed behaviour whenever the toggle is
  off or the relation has no statistics.

Determinism: candidate paths are enumerated in conjunct order (fixed
by predicate construction) and ties are broken by
``(cost, column, index name)`` -- never by dict iteration order or
object identity -- so the same schema + stats + predicate always
yields the same plan.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.predicate import (IndexRange, Predicate, candidate_ranges,
                                    plan_shape)
from repro.storage.relation import Relation

#: Cost units. One page touch is the unit (a BufferManager.touch);
#: visiting a tuple (fetch + visibility classification) costs
#: TUPLE_VISIT of it. The ratio mirrors CostModel.tuple_read's
#: relation to its implicit per-page charge and PostgreSQL's
#: cpu_tuple_cost/seq_page_cost = 0.01/1.0 scaled to our tiny
#: (32-tuple) pages.
PAGE_TOUCH = 1.0
TUPLE_VISIT = 0.2

#: Plan-cache capacity (entries). Small: entries are per predicate
#: *shape*, not per statement, and a workload has few shapes.
PLAN_CACHE_SIZE = 256


def _log2(n: float) -> float:
    return math.log2(max(2.0, n))

#: Join cost units (same page-touch scale). Building a hash bucket
#: costs slightly more than probing; a merge join pays a sort per
#: unordered input; the nested loop pays per row *pair*.
HASH_BUILD = 1.2
HASH_PROBE = 1.0
MERGE_ROW = 1.0
SORT_FACTOR = 0.05
NESTLOOP_PAIR = 0.1
JOIN_OUTPUT = 0.5


@dataclass
class JoinChoice:
    """The planner's verdict for one binary join."""

    #: "hash" | "merge" | "nestloop".
    algorithm: str
    #: Hash build side: "left" | "right" ("" for other algorithms).
    build: str = ""
    est_left: Optional[float] = None
    est_right: Optional[float] = None
    est_rows: Optional[float] = None
    cost: Optional[float] = None
    #: "cost" when statistics priced the choice, "rule" otherwise.
    source: str = "rule"

    @property
    def node_name(self) -> str:
        return {"hash": "Hash Join", "merge": "Merge Join",
                "nestloop": "Nested Loop"}[self.algorithm]


@dataclass
class ScanChoice:
    """The planner's verdict for one (relation, predicate) pair."""

    #: Chosen index name, or None for a sequential scan.
    index_name: Optional[str]
    #: Column driving the index scan (None for seq scan).
    column: Optional[str]
    #: The concrete restriction to scan with (None for seq scan).
    rng: Optional[IndexRange]
    #: Estimated rows the scan returns / pages it touches (None when
    #: the rule-based path chose without statistics).
    est_rows: Optional[float] = None
    est_pages: Optional[float] = None
    cost: Optional[float] = None
    #: How the choice was made: "cost" | "rule" | "cached".
    source: str = "rule"

    @property
    def is_seq_scan(self) -> bool:
        return self.index_name is None


class Planner:
    """Scan planner + engine-level plan cache, bound to a Database."""

    def __init__(self, db) -> None:
        self.db = db
        self.use_cost = db.config.perf.cost_planner
        self.use_cache = db.config.perf.plan_cache
        self._cache: "OrderedDict[Tuple, Optional[str]]" = OrderedDict()
        metrics = db.obs.metrics
        self.cache_hits = metrics.counter("perf.plan_cache_hits")
        self.cache_misses = metrics.counter("perf.plan_cache_misses")
        self.cost_plans = metrics.counter("planner.cost_based")
        self.rule_plans = metrics.counter("planner.rule_based")
        self.seq_chosen = metrics.counter("planner.seq_scans")
        self.index_chosen = metrics.counter("planner.index_scans")

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def plan_scan(self, rel: Relation, pred: Predicate):
        """The executor's question: ``(index, rng)`` or ``(None, None)``.

        Consults the plan cache first; on a miss, plans (cost-based
        when enabled and statistics exist, rule-based otherwise) and
        caches the choice.
        """
        shape = plan_shape(pred) if self.use_cache else None
        key = None
        if shape is not None:
            key = (rel.oid, self.db.statscat.epoch, shape)
            cached = self._cache.get(key)
            if cached is not None or key in self._cache:
                self._cache.move_to_end(key)
                self.cache_hits.inc()
                return self._materialize(rel, pred, cached)
            self.cache_misses.inc()
        choice = self.choose(rel, pred)
        if key is not None:
            self._cache[key] = choice.column
            if len(self._cache) > PLAN_CACHE_SIZE:
                self._cache.popitem(last=False)
        if choice.is_seq_scan:
            self.seq_chosen.inc()
            return None, None
        self.index_chosen.inc()
        return rel.indexes[choice.index_name], choice.rng

    def _materialize(self, rel: Relation, pred: Predicate,
                     column: Optional[str]):
        """Rebuild a concrete (index, range) from a cached choice.

        The cache stores only the chosen *column* (equality values are
        excluded from the shape key because their selectivity estimate
        is value-independent), so the actual bounds come from the live
        predicate.
        """
        if column is None:
            self.seq_chosen.inc()
            return None, None
        index = rel.index_on(column)
        if index is None:  # pragma: no cover - epoch bump prevents this
            self.seq_chosen.inc()
            return None, None
        for rng in candidate_ranges(pred):
            if rng.column == column and self._usable(index, rng):
                self.index_chosen.inc()
                return index, rng
        self.seq_chosen.inc()  # pragma: no cover - shape mismatch guard
        return None, None

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def choose(self, rel: Relation, pred: Predicate) -> ScanChoice:
        """Plan without consulting the cache (EXPLAIN uses this too)."""
        stats = self.db.statscat.get(rel.oid)
        if not self.use_cost or stats is None:
            self.rule_plans.inc()
            return self._rule_choice(rel, pred)
        self.cost_plans.inc()
        return self._cost_choice(rel, pred, stats)

    def _rule_choice(self, rel: Relation, pred: Predicate) -> ScanChoice:
        """The seed behaviour: the predicate's own ``index_range()``
        (for AND: equality-preferring first sargable conjunct), no
        statistics consulted."""
        rng = pred.index_range()
        if rng is not None:
            index = rel.index_on(rng.column)
            if index is not None and self._usable(index, rng):
                return ScanChoice(index.name, rng.column, rng, source="rule")
        return ScanChoice(None, None, None, source="rule")

    def _cost_choice(self, rel: Relation, pred: Predicate,
                     stats) -> ScanChoice:
        live_rows = stats.live_rows
        pages = max(1, rel.heap.page_count)
        seq_cost = pages * PAGE_TOUCH + live_rows * TUPLE_VISIT
        best = ScanChoice(None, None, None, est_rows=float(live_rows),
                          est_pages=float(pages), cost=seq_cost,
                          source="cost")
        candidates: List[ScanChoice] = []
        for rng in candidate_ranges(pred):
            index = rel.index_on(rng.column)
            if index is None or not self._usable(index, rng):
                continue
            est_rows, est_pages, cost = self._index_cost(
                rel, index, rng, stats, live_rows)
            candidates.append(ScanChoice(index.name, rng.column, rng,
                                         est_rows=est_rows,
                                         est_pages=est_pages, cost=cost,
                                         source="cost"))
        # Deterministic winner: cheapest, ties broken by column then
        # index name (both total orders independent of dict order).
        if candidates:
            cheapest = min(candidates,
                           key=lambda c: (c.cost, c.column, c.index_name))
            if cheapest.cost < best.cost:
                best = cheapest
        return best

    def _index_cost(self, rel: Relation, index, rng: IndexRange, stats,
                    live_rows: int) -> Tuple[float, float, float]:
        """Estimated (rows, pages, cost) for one index path."""
        col = stats.column(rng.column)
        if col is not None:
            if rng.is_equality:
                sel = col.eq_selectivity()
            else:
                sel = col.range_selectivity(rng.lo, rng.hi,
                                            lo_incl=rng.lo_incl,
                                            hi_incl=rng.hi_incl)
        else:
            # Column indexed after ANALYZE: no distribution known.
            from repro.storage.stats import DEFAULT_INEQ_SEL
            sel = DEFAULT_INEQ_SEL
        est_rows = live_rows * sel
        # Index pages: the descent plus the leaves holding the matches.
        leaf_cap = max(1, self.db.config.btree_page_size)
        index_pages = 1.0 + est_rows / leaf_cap
        # Heap pages: each match may land on a distinct page, capped by
        # the relation's size.
        heap_pages = min(float(max(1, rel.heap.page_count)), est_rows) \
            if est_rows >= 1.0 else 1.0
        cost = ((index_pages + heap_pages) * PAGE_TOUCH
                + est_rows * TUPLE_VISIT)
        return est_rows, index_pages + heap_pages, cost

    # ------------------------------------------------------------------
    # join planning
    # ------------------------------------------------------------------
    def estimated_rows(self, rel: Relation,
                       choice: Optional[ScanChoice] = None) -> float:
        """Input cardinality for join costing: the scan's own estimate
        when the cost planner produced one, else ANALYZE live rows,
        else a page-count upper bound (all deterministic)."""
        if choice is not None and choice.est_rows is not None:
            return max(1.0, choice.est_rows)
        stats = self.db.statscat.get(rel.oid)
        if stats is not None:
            return max(1.0, float(stats.live_rows))
        return max(1.0, float(rel.heap.page_count
                              * self.db.config.heap_page_size))

    def join_selectivity(self, left_rel: Relation, right_rel: Relation,
                         left_col: str, right_col: str,
                         est_left: float, est_right: float) -> float:
        """Equi-join selectivity from ANALYZE n_distinct: each left row
        matches ~|R|/ndv right rows, so sel = 1/max(ndv_l, ndv_r)
        (PostgreSQL's eqjoinsel shape). Without statistics, assume the
        key is unique on the larger side."""
        ndvs: List[float] = []
        for rel, col in ((left_rel, left_col), (right_rel, right_col)):
            stats = self.db.statscat.get(rel.oid)
            cstats = stats.column(col) if stats is not None else None
            if cstats is not None and cstats.n_distinct:
                ndvs.append(float(cstats.n_distinct))
        denom = max(ndvs) if ndvs else max(est_left, est_right)
        return 1.0 / max(1.0, denom)

    def plan_join(self, left_rel: Relation, right_rel: Relation,
                  left_col: Optional[str], right_col: Optional[str],
                  left_choice: Optional[ScanChoice] = None,
                  right_choice: Optional[ScanChoice] = None) -> JoinChoice:
        """Pick the algorithm and build side for one binary join.

        Vectorized off, or with no equality key pair, the only
        algorithm is the per-row nested loop. Otherwise hash and merge
        are priced: the hash join builds on the smaller estimated side
        (ties break to "right", which preserves natural probe order);
        the merge join's per-side sort is discounted when an ordered
        index exists on that side's join column. Every choice changes
        cost only -- all algorithms emit identical left-major rows.
        """
        el = self.estimated_rows(left_rel, left_choice)
        er = self.estimated_rows(right_rel, right_choice)
        if left_col is None or right_col is None \
                or not self.db.use_vectorized:
            cost = el * er * NESTLOOP_PAIR
            return JoinChoice("nestloop", est_left=el, est_right=er,
                              est_rows=el * er if left_col is None
                              else None, cost=cost, source="rule")
        sel = self.join_selectivity(left_rel, right_rel, left_col,
                                    right_col, el, er)
        est_rows = el * er * sel
        stats_known = (self.db.statscat.get(left_rel.oid) is not None
                       or self.db.statscat.get(right_rel.oid) is not None)
        build = "right" if er <= el else "left"
        probe_rows = el if build == "right" else er
        build_rows = er if build == "right" else el
        hash_cost = (build_rows * HASH_BUILD + probe_rows * HASH_PROBE
                     + est_rows * JOIN_OUTPUT)
        merge_cost = (el + er) * MERGE_ROW + est_rows * JOIN_OUTPUT
        for rel, col, n in ((left_rel, left_col, el),
                            (right_rel, right_col, er)):
            index = rel.index_on(col)
            if index is None or not index.ordered:
                merge_cost += n * _log2(n) * SORT_FACTOR
        if merge_cost < hash_cost:
            return JoinChoice("merge", est_left=el, est_right=er,
                              est_rows=est_rows, cost=merge_cost,
                              source="cost" if stats_known else "rule")
        return JoinChoice("hash", build=build, est_left=el, est_right=er,
                          est_rows=est_rows, cost=hash_cost,
                          source="cost" if stats_known else "rule")

    @staticmethod
    def _usable(index, rng: IndexRange) -> bool:
        """The seed validity rules from Executor._plan_index."""
        if rng.overlap:
            return bool(getattr(index, "spatial", False))
        return index.ordered or rng.is_equality

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, Any]:
        return {"entries": len(self._cache), "capacity": PLAN_CACHE_SIZE,
                "epoch": self.db.statscat.epoch}

    def lock_granularity(self, choice: ScanChoice, rel: Relation) -> str:
        """The predicate-lock granularity the chosen scan will take
        (the EXPLAIN column; see DESIGN.md, "Query planning")."""
        if choice.is_seq_scan:
            return "relation"
        index = rel.indexes[choice.index_name]
        if not index.supports_predicate_locks:
            return "relation"  # whole-index lock (section 7.4)
        if (self.db.config.ssi.index_locking == "nextkey"
                and index.supports_key_locking):
            return "key-range"
        return "page"


# ----------------------------------------------------------------------
# EXPLAIN plan trees
# ----------------------------------------------------------------------
@dataclass
class PlanNode:
    """One node of a deterministic EXPLAIN tree."""

    node: str                     #: "Seq Scan" | "Index Scan"
    relation: str
    index: Optional[str] = None
    column: Optional[str] = None
    lock_granularity: str = "relation"
    est_rows: Optional[float] = None
    est_pages: Optional[float] = None
    cost: Optional[float] = None
    source: str = "rule"
    filter: Optional[str] = None
    #: Node-specific annotation (join condition, build side, group
    #: keys); rendered in the head parenthetical.
    detail: Optional[str] = None
    #: EXPLAIN ANALYZE actuals (None for plain EXPLAIN).
    actual_rows: Optional[int] = None
    actual_pages: Optional[int] = None
    children: List["PlanNode"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "node": self.node, "relation": self.relation,
            "lock_granularity": self.lock_granularity, "source": self.source,
        }
        if self.index is not None:
            out["index"] = self.index
            out["column"] = self.column
        if self.est_rows is not None:
            out["est_rows"] = round(self.est_rows, 2)
            out["est_pages"] = round(self.est_pages, 2)
            out["cost"] = round(self.cost, 2)
        if self.filter:
            out["filter"] = self.filter
        if self.detail:
            out["detail"] = self.detail
        if self.actual_rows is not None:
            out["actual_rows"] = self.actual_rows
            out["actual_pages"] = self.actual_pages
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def render(self, indent: int = 0) -> List[str]:
        pad = "  " * indent
        if self.node == "Index Scan":
            head = (f"{pad}Index Scan using {self.index} on "
                    f"{self.relation} (column={self.column})")
        elif self.node == "Seq Scan":
            head = f"{pad}Seq Scan on {self.relation}"
        else:
            head = f"{pad}{self.node} on {self.relation}"
        if self.node in ("Seq Scan", "Index Scan"):
            parts = [f"lock={self.lock_granularity}", f"plan={self.source}"]
            if self.est_rows is not None:
                parts.insert(0, f"cost={self.cost:.2f} "
                                f"rows={self.est_rows:.2f} "
                                f"pages={self.est_pages:.2f}")
            head += "  (" + " ".join(parts) + ")"
        elif self.detail is not None or self.est_rows is not None:
            parts = []
            if self.detail is not None:
                parts.append(self.detail)
            if self.est_rows is not None:
                parts.append(f"cost={self.cost:.2f} rows={self.est_rows:.2f}")
            head += "  (" + " ".join(parts) + ")"
        lines = [head]
        if self.filter:
            lines.append(f"{pad}  Filter: {self.filter}")
        if self.actual_rows is not None:
            lines.append(f"{pad}  Actual: rows={self.actual_rows} "
                         f"pages={self.actual_pages}")
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def __str__(self) -> str:
        return "\n".join(self.render())


def explain_scan(db, rel: Relation, pred: Predicate) -> PlanNode:
    """Build the EXPLAIN node for scanning ``rel`` with ``pred``.

    Always plans fresh (never reports a cached entry) so the output is
    a pure function of schema + statistics + predicate.
    """
    choice = db.planner.choose(rel, pred)
    if choice.is_seq_scan:
        node = PlanNode("Seq Scan", rel.name,
                        lock_granularity=db.planner.lock_granularity(
                            choice, rel),
                        est_rows=choice.est_rows, est_pages=choice.est_pages,
                        cost=choice.cost, source=choice.source,
                        filter=repr(pred))
    else:
        node = PlanNode("Index Scan", rel.name, index=choice.index_name,
                        column=choice.column,
                        lock_granularity=db.planner.lock_granularity(
                            choice, rel),
                        est_rows=choice.est_rows, est_pages=choice.est_pages,
                        cost=choice.cost, source=choice.source,
                        filter=repr(pred))
    return node
