"""The engine: public API tying the substrates together.

`Database` owns the shared state (catalog, clog, lock managers, SSI
manager, buffer pool); `Session` is the per-connection handle with
PostgreSQL-flavoured semantics: BEGIN with an isolation level,
statements that may suspend on lock waits, savepoints, two-phase
commit, and automatic rollback on serialization failures.
"""

from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import (AlwaysTrue, And, Between, Eq, Func, Ge,
                                    Gt, Le, Lt, Ne, Or, Overlaps, Predicate)
from repro.engine.database import Database
from repro.engine.session import Session

__all__ = [
    "Database",
    "Session",
    "IsolationLevel",
    "Predicate",
    "AlwaysTrue",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "Between",
    "And",
    "Or",
    "Overlaps",
    "Func",
]
