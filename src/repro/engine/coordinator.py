"""External two-phase-commit coordinator.

The paper notes (section 7.1, footnote): "PostgreSQL does not itself
support distributed transactions; its two-phase commit support is
intended as a primitive that can be used to build an external
transaction coordinator." This module is that coordinator: it runs one
logical transaction across several databases, drives the
prepare-all-then-commit-all protocol, keeps its own decision log, and
recovers in-doubt branches after a crash.

Serializability remains a *per-database* guarantee, exactly as with
PostgreSQL: SSI on each participant plus atomic commit across them.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.engine.isolation import IsolationLevel
from repro.errors import InvalidTransactionStateError, ReproError


class Decision(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


class DistributedTransaction:
    """One transaction spanning every database the coordinator knows."""

    def __init__(self, coordinator: "Coordinator", gid: str,
                 isolation: IsolationLevel) -> None:
        self.coordinator = coordinator
        self.gid = gid
        self.sessions = {name: db.session()
                         for name, db in coordinator.databases.items()}
        for session in self.sessions.values():
            session.begin(isolation)
        self._finished = False

    def on(self, name: str):
        """The branch session for one participant database."""
        return self.sessions[name]

    # -- two-phase commit ------------------------------------------------
    def commit(self) -> None:
        """Prepare every branch, log the decision, then commit all.

        If any branch fails to prepare (e.g. an SSI pre-commit check
        fires there), every branch is rolled back and the error is
        re-raised: atomicity across databases.
        """
        self._check_active()
        prepared: List[str] = []
        try:
            for name, session in self.sessions.items():
                if session.in_transaction():
                    session.prepare_transaction(self._branch_gid(name))
                    prepared.append(name)
        except ReproError:
            for name in prepared:
                self.coordinator.databases[name].rollback_prepared(
                    self._branch_gid(name))
            for session in self.sessions.values():
                if session.in_transaction():
                    session.rollback()
            self._finished = True
            self.coordinator.log.append((self.gid, Decision.ABORTED))
            raise
        # The decision record is the commit point: branches prepared
        # after this line are committed even across a coordinator crash.
        self.coordinator.log.append((self.gid, Decision.COMMITTED))
        for name in prepared:
            self.coordinator.databases[name].commit_prepared(
                self._branch_gid(name))
        self._finished = True

    def rollback(self) -> None:
        self._check_active()
        for session in self.sessions.values():
            if session.in_transaction():
                session.rollback()
        self.coordinator.log.append((self.gid, Decision.ABORTED))
        self._finished = True

    def _branch_gid(self, name: str) -> str:
        return f"{self.gid}:{name}"

    def _check_active(self) -> None:
        if self._finished:
            raise InvalidTransactionStateError(
                f"distributed transaction {self.gid} already finished")


class Coordinator:
    """Drives distributed transactions over named databases."""

    def __init__(self, databases: Dict[str, "object"]) -> None:
        self.databases = dict(databases)
        #: Durable decision log: (gid, decision), append-only.
        self.log: List = []
        self._next_gid = 1

    def transaction(self, gid: Optional[str] = None,
                    isolation: IsolationLevel =
                    IsolationLevel.SERIALIZABLE) -> DistributedTransaction:
        if gid is None:
            gid = f"dtx{self._next_gid}"
            self._next_gid += 1
        return DistributedTransaction(self, gid, isolation)

    def decision_for(self, gid: str) -> Optional[Decision]:
        for logged_gid, decision in reversed(self.log):
            if logged_gid == gid:
                return decision
        return None

    def recover(self) -> Dict[str, str]:
        """Resolve in-doubt branches after a crash.

        Presumed abort: a prepared branch whose gid has a logged COMMIT
        decision is committed; any other prepared branch of ours is
        rolled back (the coordinator never logged the commit point, so
        no branch can have committed).
        """
        actions: Dict[str, str] = {}
        for name, db in self.databases.items():
            for branch_gid in db.prepared_gids():
                gid, _, participant = branch_gid.partition(":")
                if participant != name:
                    continue  # not one of ours
                if self.decision_for(gid) is Decision.COMMITTED:
                    db.commit_prepared(branch_gid)
                    actions[branch_gid] = "committed"
                else:
                    db.rollback_prepared(branch_gid)
                    actions[branch_gid] = "rolled back"
        return actions
