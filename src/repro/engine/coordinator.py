"""External two-phase-commit coordinator.

The paper notes (section 7.1, footnote): "PostgreSQL does not itself
support distributed transactions; its two-phase commit support is
intended as a primitive that can be used to build an external
transaction coordinator." This module is that coordinator: it runs one
logical transaction across several databases, drives the
prepare-all-then-commit-all protocol, keeps its own decision log, and
recovers in-doubt branches after a crash.

Serializability remains a *per-database* guarantee, exactly as with
PostgreSQL: SSI on each participant plus atomic commit across them.
"""

from __future__ import annotations

import enum
import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.isolation import IsolationLevel
from repro.errors import InvalidTransactionStateError, ReproError


class Decision(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


class DecisionLog:
    """The coordinator's decision log: append-only (gid, decision).

    With a ``path`` every append is written as one JSON line and
    fsynced before returning -- the append IS the commit point of the
    two-phase protocol, so it must survive a coordinator crash. A new
    coordinator pointed at the same path replays the log on
    construction and can resolve in-doubt prepared branches
    (:meth:`Coordinator.recover`). Without a path the log is in-memory
    only (the seed behaviour, still used by single-process tests).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        import threading
        self.path = path
        # Concurrent client threads of the shard router append
        # decisions; the log write + list append must stay atomic.
        self._mutex = threading.Lock()
        self._entries: List[Tuple[str, Decision]] = []
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    rec = json.loads(line)
                    self._entries.append(
                        (rec["gid"], Decision(rec["decision"])))

    def append(self, entry: Tuple[str, Decision]) -> None:
        gid, decision = entry
        with self._mutex:
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps({"gid": gid,
                                         "decision": decision.value}) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
            self._entries.append((gid, decision))

    def __iter__(self) -> Iterator[Tuple[str, Decision]]:
        return iter(self._entries)

    def __reversed__(self) -> Iterator[Tuple[str, Decision]]:
        return reversed(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, idx):
        return self._entries[idx]


class DistributedTransaction:
    """One transaction spanning every database the coordinator knows."""

    def __init__(self, coordinator: "Coordinator", gid: str,
                 isolation: IsolationLevel) -> None:
        self.coordinator = coordinator
        self.gid = gid
        self.sessions = {name: db.session()
                         for name, db in coordinator.databases.items()}
        for session in self.sessions.values():
            session.begin(isolation)
        self._finished = False

    def on(self, name: str):
        """The branch session for one participant database."""
        return self.sessions[name]

    # -- two-phase commit ------------------------------------------------
    def commit(self) -> None:
        """Prepare every branch, log the decision, then commit all.

        If any branch fails to prepare (e.g. an SSI pre-commit check
        fires there), every branch is rolled back and the error is
        re-raised: atomicity across databases.
        """
        self._check_active()
        try:
            self.coordinator.commit_branches(self.gid, self.sessions)
        finally:
            self._finished = True

    def rollback(self) -> None:
        self._check_active()
        for session in self.sessions.values():
            if session.in_transaction():
                session.rollback()
        self.coordinator.log.append((self.gid, Decision.ABORTED))
        self._finished = True

    def _branch_gid(self, name: str) -> str:
        return f"{self.gid}:{name}"

    def _check_active(self) -> None:
        if self._finished:
            raise InvalidTransactionStateError(
                f"distributed transaction {self.gid} already finished")


class Coordinator:
    """Drives distributed transactions over named databases."""

    def __init__(self, databases: Dict[str, "object"],
                 log_path: Optional[str] = None) -> None:
        self.databases = dict(databases)
        #: Durable decision log: (gid, decision), append-only. With a
        #: ``log_path`` it survives coordinator restarts (JSONL replay).
        self.log = DecisionLog(log_path)
        self._next_gid = 1

    def transaction(self, gid: Optional[str] = None,
                    isolation: IsolationLevel =
                    IsolationLevel.SERIALIZABLE) -> DistributedTransaction:
        if gid is None:
            gid = f"dtx{self._next_gid}"
            self._next_gid += 1
        return DistributedTransaction(self, gid, isolation)

    def commit_branches(self, gid: str, sessions: Dict[str, "object"], *,
                        on_prepared=None, before_commit=None,
                        commit_prepared=None) -> List[str]:
        """Two-phase-commit externally supplied branch sessions.

        Generalizes :meth:`DistributedTransaction.commit` for callers
        (the shard router) that manage their own branch sessions:
        prepare every in-transaction branch, run ``on_prepared()`` --
        the distributed-SSI certification hook; if it raises, every
        prepared branch is rolled back and ABORTED is logged -- then
        run ``before_commit()`` (visibility bookkeeping that must
        precede the first branch commit), log the COMMITTED decision
        (the commit point), and commit the prepared branches.
        ``commit_prepared(name, branch_gid)`` overrides the default
        per-branch commit call so callers can fan it out in parallel
        or route it through per-shard engine latches.
        """
        prepared: List[str] = []
        try:
            for name, session in sessions.items():
                if session.in_transaction():
                    session.prepare_transaction(f"{gid}:{name}")
                    prepared.append(name)
            if on_prepared is not None:
                on_prepared()
        except ReproError:
            for name in prepared:
                self.databases[name].rollback_prepared(f"{gid}:{name}")
            for session in sessions.values():
                if session.in_transaction():
                    session.rollback()
            self.log.append((gid, Decision.ABORTED))
            raise
        if before_commit is not None:
            before_commit()
        # The decision record is the commit point: branches prepared
        # after this line are committed even across a coordinator crash.
        self.log.append((gid, Decision.COMMITTED))
        for name in prepared:
            if commit_prepared is not None:
                commit_prepared(name, f"{gid}:{name}")
            else:
                self.databases[name].commit_prepared(f"{gid}:{name}")
        return prepared

    def decision_for(self, gid: str) -> Optional[Decision]:
        for logged_gid, decision in reversed(self.log):
            if logged_gid == gid:
                return decision
        return None

    def recover(self) -> Dict[str, str]:
        """Resolve in-doubt branches after a crash.

        Presumed abort: a prepared branch whose gid has a logged COMMIT
        decision is committed; any other prepared branch of ours is
        rolled back (the coordinator never logged the commit point, so
        no branch can have committed).
        """
        actions: Dict[str, str] = {}
        for name, db in self.databases.items():
            for branch_gid in db.prepared_gids():
                gid, _, participant = branch_gid.partition(":")
                if participant != name:
                    continue  # not one of ours
                if self.decision_for(gid) is Decision.COMMITTED:
                    db.commit_prepared(branch_gid)
                    actions[branch_gid] = "committed"
                else:
                    db.rollback_prepared(branch_gid)
                    actions[branch_gid] = "rolled back"
        return actions
