"""Structured WHERE-clause predicates.

Structured (rather than lambda-only) predicates let the planner choose
index scans, which in turn drives the predicate-locking behaviour the
paper evaluates: an index scan SIREAD-locks only the B+-tree pages it
visits, while a sequential scan locks the whole relation. ``Func``
predicates force a sequential scan.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

Row = Dict[str, Any]


@dataclass(frozen=True)
class IndexRange:
    """A sargable single-column restriction extracted from a predicate."""

    column: str
    lo: Optional[Any]
    hi: Optional[Any]
    lo_incl: bool = True
    hi_incl: bool = True
    #: Interval-overlap restriction (GiST): the column holds (lo, hi)
    #: intervals and the query asks for overlap with [lo, hi].
    overlap: bool = False

    @property
    def is_equality(self) -> bool:
        return (self.lo is not None and self.lo == self.hi
                and self.lo_incl and self.hi_incl and not self.overlap)


class Predicate(abc.ABC):
    """Boolean expression over a row."""

    @abc.abstractmethod
    def matches(self, row: Row) -> bool:
        """Evaluate against a row (dict of column values)."""

    def index_range(self) -> Optional[IndexRange]:
        """A restriction usable for an index scan, if any."""
        return None

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)


class AlwaysTrue(Predicate):
    """Matches every row (full-table operations)."""

    def matches(self, row: Row) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class Eq(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        return row.get(self.column) == self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.value, self.value)

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class Ne(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        return row.get(self.column) != self.value

    def __repr__(self) -> str:
        return f"{self.column} <> {self.value!r}"


@dataclass(frozen=True)
class Lt(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v < self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, None, self.value, hi_incl=False)

    def __repr__(self) -> str:
        return f"{self.column} < {self.value!r}"


@dataclass(frozen=True)
class Le(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v <= self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, None, self.value)

    def __repr__(self) -> str:
        return f"{self.column} <= {self.value!r}"


@dataclass(frozen=True)
class Gt(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v > self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.value, None, lo_incl=False)

    def __repr__(self) -> str:
        return f"{self.column} > {self.value!r}"


@dataclass(frozen=True)
class Ge(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v >= self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.value, None)

    def __repr__(self) -> str:
        return f"{self.column} >= {self.value!r}"


@dataclass(frozen=True)
class Between(Predicate):
    column: str
    lo: Any
    hi: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and self.lo <= v <= self.hi

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.lo, self.hi)

    def __repr__(self) -> str:
        return f"{self.column} BETWEEN {self.lo!r} AND {self.hi!r}"


@dataclass(frozen=True)
class Overlaps(Predicate):
    """Interval overlap: the column holds (lo, hi) tuples (or scalars,
    treated as degenerate intervals) and the row matches when its
    interval intersects [lo, hi]. Sargable through GiST indexes."""

    column: str
    lo: Any
    hi: Any

    def matches(self, row: Row) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if isinstance(value, (tuple, list)) and len(value) == 2:
            a, b = value
            if b < a:
                a, b = b, a
        else:
            a = b = value
        return a <= self.hi and self.lo <= b

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.lo, self.hi, overlap=True)

    def __repr__(self) -> str:
        return f"{self.column} && [{self.lo!r}, {self.hi!r}]"


class And(Predicate):
    """Conjunction; the first sargable conjunct drives index choice,
    the rest are applied as filters."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Sequence[Predicate] = predicates

    def matches(self, row: Row) -> bool:
        return all(p.matches(row) for p in self.predicates)

    def index_range(self) -> Optional[IndexRange]:
        for pred in self.predicates:
            rng = pred.index_range()
            if rng is not None:
                return rng
        return None

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.predicates) + ")"


class Or(Predicate):
    """Disjunction; never sargable (forces a sequential scan)."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Sequence[Predicate] = predicates

    def matches(self, row: Row) -> bool:
        return any(p.matches(row) for p in self.predicates)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.predicates) + ")"


class Func(Predicate):
    """Arbitrary Python filter; forces a sequential scan (the
    "ad hoc query" case of paper section 2.2)."""

    def __init__(self, fn: Callable[[Row], bool],
                 description: str = "<func>") -> None:
        self._fn = fn
        self._description = description

    def matches(self, row: Row) -> bool:
        return bool(self._fn(row))

    def __repr__(self) -> str:
        return self._description
