"""Structured WHERE-clause predicates.

Structured (rather than lambda-only) predicates let the planner choose
index scans, which in turn drives the predicate-locking behaviour the
paper evaluates: an index scan SIREAD-locks only the B+-tree pages it
visits, while a sequential scan locks the whole relation. ``Func``
predicates force a sequential scan.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

Row = Dict[str, Any]


@dataclass(frozen=True)
class IndexRange:
    """A sargable single-column restriction extracted from a predicate."""

    column: str
    lo: Optional[Any]
    hi: Optional[Any]
    lo_incl: bool = True
    hi_incl: bool = True
    #: Interval-overlap restriction (GiST): the column holds (lo, hi)
    #: intervals and the query asks for overlap with [lo, hi].
    overlap: bool = False

    @property
    def is_equality(self) -> bool:
        return (self.lo is not None and self.lo == self.hi
                and self.lo_incl and self.hi_incl and not self.overlap)


class Predicate(abc.ABC):
    """Boolean expression over a row."""

    @abc.abstractmethod
    def matches(self, row: Row) -> bool:
        """Evaluate against a row (dict of column values)."""

    def index_range(self) -> Optional[IndexRange]:
        """A restriction usable for an index scan, if any."""
        return None

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)


class AlwaysTrue(Predicate):
    """Matches every row (full-table operations)."""

    def matches(self, row: Row) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class Eq(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        return row.get(self.column) == self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.value, self.value)

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class Ne(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        return row.get(self.column) != self.value

    def __repr__(self) -> str:
        return f"{self.column} <> {self.value!r}"


@dataclass(frozen=True)
class Lt(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v < self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, None, self.value, hi_incl=False)

    def __repr__(self) -> str:
        return f"{self.column} < {self.value!r}"


@dataclass(frozen=True)
class Le(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v <= self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, None, self.value)

    def __repr__(self) -> str:
        return f"{self.column} <= {self.value!r}"


@dataclass(frozen=True)
class Gt(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v > self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.value, None, lo_incl=False)

    def __repr__(self) -> str:
        return f"{self.column} > {self.value!r}"


@dataclass(frozen=True)
class Ge(Predicate):
    column: str
    value: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and v >= self.value

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.value, None)

    def __repr__(self) -> str:
        return f"{self.column} >= {self.value!r}"


@dataclass(frozen=True)
class Between(Predicate):
    column: str
    lo: Any
    hi: Any

    def matches(self, row: Row) -> bool:
        v = row.get(self.column)
        return v is not None and self.lo <= v <= self.hi

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.lo, self.hi)

    def __repr__(self) -> str:
        return f"{self.column} BETWEEN {self.lo!r} AND {self.hi!r}"


@dataclass(frozen=True)
class Overlaps(Predicate):
    """Interval overlap: the column holds (lo, hi) tuples (or scalars,
    treated as degenerate intervals) and the row matches when its
    interval intersects [lo, hi]. Sargable through GiST indexes."""

    column: str
    lo: Any
    hi: Any

    def matches(self, row: Row) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if isinstance(value, (tuple, list)) and len(value) == 2:
            a, b = value
            if b < a:
                a, b = b, a
        else:
            a = b = value
        return a <= self.hi and self.lo <= b

    def index_range(self) -> Optional[IndexRange]:
        return IndexRange(self.column, self.lo, self.hi, overlap=True)

    def __repr__(self) -> str:
        return f"{self.column} && [{self.lo!r}, {self.hi!r}]"


class And(Predicate):
    """Conjunction; one sargable conjunct drives index choice, the
    rest are applied as filters.

    Even with the cost planner off, an *equality* conjunct is
    preferred over an open or bounded range: equality restrictions
    are almost always more selective, and both choices return the
    same rows (the remaining conjuncts re-filter every scanned row).
    Among equality conjuncts -- or when none exists -- the first
    sargable one wins, preserving the original rule-based order.
    See DESIGN.md, "Query planning".
    """

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Sequence[Predicate] = predicates

    def matches(self, row: Row) -> bool:
        return all(p.matches(row) for p in self.predicates)

    def index_range(self) -> Optional[IndexRange]:
        first: Optional[IndexRange] = None
        for pred in self.predicates:
            rng = pred.index_range()
            if rng is None:
                continue
            if rng.is_equality:
                return rng
            if first is None:
                first = rng
        return first

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.predicates) + ")"


class Or(Predicate):
    """Disjunction; never sargable (forces a sequential scan)."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Sequence[Predicate] = predicates

    def matches(self, row: Row) -> bool:
        return any(p.matches(row) for p in self.predicates)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.predicates) + ")"


def candidate_ranges(pred: Predicate) -> List[IndexRange]:
    """Every sargable restriction the planner may choose from.

    For a conjunction this is each conjunct's range in conjunct order
    (a deterministic order fixed by the predicate's construction --
    never dict/iteration order); for any other predicate it is the
    single ``index_range()`` result. The caller filters by available
    indexes and prices the survivors.
    """
    if isinstance(pred, And):
        ranges = []
        for conjunct in pred.predicates:
            rng = conjunct.index_range()
            if rng is not None:
                ranges.append(rng)
        return ranges
    rng = pred.index_range()
    return [rng] if rng is not None else []


def plan_shape(pred: Predicate) -> Optional[Tuple]:
    """A hashable key describing the predicate's *plannable shape*.

    Two predicates with the same shape are guaranteed the same scan
    choice, so the plan cache can serve one's plan to the other:

    * equality restrictions keep only the column -- their selectivity
      estimate (1/n_distinct) is value-independent, so ``k = 5`` and
      ``k = 7`` share a plan;
    * range restrictions keep the bounds too -- histogram selectivity
      is value-dependent, so different bounds must re-plan;
    * ``None`` means the predicate is uncacheable (``Func``/``Or``/
      unhashable bound values): always plan live.
    """
    if isinstance(pred, AlwaysTrue):
        return ("true",)
    if isinstance(pred, And):
        parts = []
        for conjunct in pred.predicates:
            part = plan_shape(conjunct)
            if part is None:
                return None
            parts.append(part)
        return ("and",) + tuple(parts)
    if isinstance(pred, (Eq, Ne)):
        return (type(pred).__name__, pred.column)
    if isinstance(pred, (Lt, Le, Gt, Ge)):
        try:
            hash(pred.value)
        except TypeError:
            return None
        return (type(pred).__name__, pred.column, pred.value)
    if isinstance(pred, (Between, Overlaps)):
        try:
            hash((pred.lo, pred.hi))
        except TypeError:
            return None
        return (type(pred).__name__, pred.column, pred.lo, pred.hi)
    return None


class Func(Predicate):
    """Arbitrary Python filter; forces a sequential scan (the
    "ad hoc query" case of paper section 2.2)."""

    def __init__(self, fn: Callable[[Row], bool],
                 description: str = "<func>") -> None:
        self._fn = fn
        self._description = description

    def matches(self, row: Row) -> bool:
        return bool(self._fn(row))

    def __repr__(self) -> str:
        return self._description
