"""Batch relational operators: joins, grouping, sort, limit.

These run over materialized row lists (the scan output) inside one
statement, so they inherit the scan's SSI guarantees: every base-table
row examined was read under the scan's SIREAD locks, and phantom
protection for the *join inputs* falls out of the per-scan predicate
locks -- a join adds no new read footprint beyond its scans.

Determinism contract (lint rule DET001 treats this module as a pure
choice module): output order never depends on dict iteration order or
object identity.

* Every join algorithm emits rows in **left-major order** -- left
  input order, then right input order -- regardless of algorithm or
  build side, so the planner's choice (and the vectorized toggle)
  changes cost, never results. Hash buckets preserve insertion order
  by construction; probe-right plans and merge joins restore
  left-major order by sorting (left index, right index) pairs.
* Equi-join keys follow SQL semantics: a NULL key matches nothing
  (Python's ``None == None`` would say otherwise, so key extraction
  filters None explicitly in every algorithm).
* Grouping emits groups in first-appearance order of the group key.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

Row = Dict[str, Any]
#: Key extractor: row -> join/group key (None = SQL NULL, never joins).
KeyFn = Callable[[Row], Any]
#: Residual filter over a combined row.
CondFn = Callable[[Row], bool]
#: Combine a left and right row into the joined output row.
CombineFn = Callable[[Row, Row], Row]


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
def nested_loop_join(left: Sequence[Row], right: Sequence[Row],
                     lkey: Optional[KeyFn], rkey: Optional[KeyFn],
                     cond: CondFn, combine: CombineFn) -> List[Row]:
    """The per-row baseline (and the only algorithm usable without an
    equality key): every (left, right) pair is combined and filtered.
    O(|L| * |R|); the vectorized-off path and non-equi joins use it."""
    out: List[Row] = []
    for l_row in left:
        lk = lkey(l_row) if lkey is not None else None
        if lkey is not None and lk is None:
            continue
        for r_row in right:
            if lkey is not None:
                rk = rkey(r_row)
                if rk is None or rk != lk:
                    continue
            row = combine(l_row, r_row)
            if cond(row):
                out.append(row)
    return out


def hash_join(left: Sequence[Row], right: Sequence[Row],
              lkey: KeyFn, rkey: KeyFn, cond: CondFn,
              combine: CombineFn, build: str = "right") -> List[Row]:
    """Equi-join through a hash table on the build side.

    ``build="right"`` probes the left input in order and each bucket
    holds right rows in input order, so the output is left-major with
    no extra work. ``build="left"`` (the planner's pick when the left
    side is bigger) probes with the right input and then restores
    left-major order by sorting (left index, right index) pairs.
    """
    out: List[Row] = []
    if build == "right":
        table: Dict[Any, List[Row]] = {}
        for r_row in right:
            k = rkey(r_row)
            if k is None:
                continue
            bucket = table.get(k)
            if bucket is None:
                table[k] = bucket = []
            bucket.append(r_row)
        for l_row in left:
            k = lkey(l_row)
            if k is None:
                continue
            bucket = table.get(k)
            if bucket:
                for r_row in bucket:
                    row = combine(l_row, r_row)
                    if cond(row):
                        out.append(row)
        return out
    btable: Dict[Any, List[Tuple[int, Row]]] = {}
    for li, l_row in enumerate(left):
        k = lkey(l_row)
        if k is None:
            continue
        lbucket = btable.get(k)
        if lbucket is None:
            btable[k] = lbucket = []
        lbucket.append((li, l_row))
    pairs: List[Tuple[int, int, Row, Row]] = []
    for ri, r_row in enumerate(right):
        k = rkey(r_row)
        if k is None:
            continue
        lbucket = btable.get(k)
        if lbucket:
            for li, l_row in lbucket:
                pairs.append((li, ri, l_row, r_row))
    pairs.sort(key=lambda p: (p[0], p[1]))
    for _li, _ri, l_row, r_row in pairs:
        row = combine(l_row, r_row)
        if cond(row):
            out.append(row)
    return out


def merge_join(left: Sequence[Row], right: Sequence[Row],
               lkey: KeyFn, rkey: KeyFn, cond: CondFn,
               combine: CombineFn) -> List[Row]:
    """Sort-merge equi-join.

    Both inputs are sorted by (key, input index) -- the index tiebreak
    keeps the sort total without comparing rows -- then merged with the
    standard equal-run cross product. Output is restored to left-major
    order (the shared contract) by sorting the matched index pairs.
    """
    ls = sorted(((lkey(l_row), li) for li, l_row in enumerate(left)
                 if lkey(l_row) is not None))
    rs = sorted(((rkey(r_row), ri) for ri, r_row in enumerate(right)
                 if rkey(r_row) is not None))
    pairs: List[Tuple[int, int]] = []
    i = j = 0
    while i < len(ls) and j < len(rs):
        lk, rk = ls[i][0], rs[j][0]
        if lk < rk:
            i += 1
        elif rk < lk:
            j += 1
        else:
            # Equal-key runs on both sides: cross product.
            i2 = i
            while i2 < len(ls) and ls[i2][0] == lk:
                i2 += 1
            j2 = j
            while j2 < len(rs) and rs[j2][0] == rk:
                j2 += 1
            for a in range(i, i2):
                for b in range(j, j2):
                    pairs.append((ls[a][1], rs[b][1]))
            i, j = i2, j2
    pairs.sort()
    out: List[Row] = []
    for li, ri in pairs:
        row = combine(left[li], right[ri])
        if cond(row):
            out.append(row)
    return out


# ----------------------------------------------------------------------
# grouping and aggregates
# ----------------------------------------------------------------------
def hash_group(rows: Sequence[Row], group_cols: Sequence[str]
               ) -> List[Tuple[Tuple, List[Row]]]:
    """Partition rows by their group key, emitting groups in
    first-appearance order (a deterministic order independent of hash
    or dict iteration). With no group columns there is exactly one
    group -- even over zero rows, matching SQL's global-aggregate
    behaviour (``SELECT COUNT(*) ... `` returns one row)."""
    groups: Dict[Tuple, List[Row]] = {}
    order: List[Tuple] = []
    for row in rows:
        key = tuple(row.get(c) for c in group_cols)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = bucket = []
            order.append(key)
        bucket.append(row)
    if not group_cols and not order:
        return [((), [])]
    return [(key, groups[key]) for key in order]


def aggregate_value(func: str, column: Optional[str],
                    rows: Sequence[Row]) -> Any:
    """One aggregate over one group, with SQL NULL semantics:
    COUNT(*) counts rows, every other form skips NULL inputs, and an
    empty input yields NULL (0 for COUNT). Matches the seed
    SQLSession._aggregate_row exactly."""
    if func == "COUNT":
        if column is None:
            return len(rows)
        return sum(1 for r in rows if r.get(column) is not None)
    values = [v for r in rows if (v := r.get(column)) is not None]
    if not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    if func == "AVG":
        return sum(values) / len(values)
    raise ValueError(f"unknown aggregate {func}")


# ----------------------------------------------------------------------
# sort / limit
# ----------------------------------------------------------------------
def sort_rows(rows: List[Row], column: str,
              descending: bool = False) -> List[Row]:
    """ORDER BY one column (stable, in place; same call shape the
    pre-batch SQL layer used)."""
    rows.sort(key=lambda r: r.get(column), reverse=descending)
    return rows


def limit_rows(rows: List[Row], limit: Optional[int]) -> List[Row]:
    return rows if limit is None else rows[:limit]
