"""Latching discipline for real-thread execution (repro.server).

The engine was built for the deterministic single-threaded scheduler:
shared structures (heap pages, CLOG, FSM, visibility map, the SSI
SIREAD table and conflict graph, the heavyweight lock table) are
mutated without any synchronization, and statements that must wait
yield a condition object for the scheduler to poll. The network server
runs statements from real OS threads, which needs two things:

* a **latch** (short-term mutual exclusion, PostgreSQL's LWLock role)
  around every touch of shared engine state; and
* real **parking**: a thread whose statement would block must release
  the latch and sleep on a condition variable until another thread's
  commit/abort/release makes its wait condition ready -- the
  deterministic scheduler is not there to poll for it.

Discipline
----------

Latches are named and **ranked**. A thread may only acquire latches in
strictly increasing rank order (re-acquiring a latch it already holds
is always allowed -- latches are reentrant); any out-of-order
acquisition raises :class:`LatchOrderError` immediately, on every
build, making lock-order deadlocks between latches structurally
impossible rather than merely unobserved. The rank order is::

    ENGINE (10)  <  CONNECTIONS (20)  <  WIRE (30)  <  METRICS (40)

* ``ENGINE`` -- the per-database engine latch. Coarse by design: one
  statement step mutates many structures (heap + FSM + vismap + SSI +
  lock table) and a single latch makes the cross-structure invariants
  the sanitizers check atomic under threads. Held for the duration of
  one statement, *except* while parked on a wait condition and at
  voluntary scan yield points (:meth:`EngineLatch.bow`), which is
  where real concurrency interleaves.
* ``CONNECTIONS`` -- the server's connection registry (admission
  control reads/writes it from the accept loop while workers
  unregister).
* ``WIRE`` -- one per connection, serializing response writes to the
  socket (the reader thread writes backpressure rejections while the
  worker writes results).
* ``METRICS`` -- server-side metric points touched outside the engine
  latch (latency histograms, retry counters).

Waits are **level-triggered**: parked threads re-check
``condition.ready`` under the latch, and every completed engine entry
broadcasts (:meth:`EngineLatch.notify_all`) before releasing, so a
commit that grants queued lock requests or decides snapshot safety
wakes every parked statement. A small poll interval bounds the damage
of any missed notification.
"""

from __future__ import annotations

import threading
import time  # repro: noqa(DET001) -- latch park deadlines are wall-clock by nature; they never influence the logical history, only when a waiting thread gives up
from typing import Callable, List, Optional

#: Canonical ranks, lowest (outermost) first.
RANK_ENGINE = 10
RANK_CONNECTIONS = 20
RANK_WIRE = 30
RANK_METRICS = 40

_local = threading.local()


def _held_stack() -> List["Latch"]:
    """This thread's stack of currently-held latches (outermost
    first)."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


# ----------------------------------------------------------------------
# introspection (used by the dynamic lockset sanitizer and tests)
# ----------------------------------------------------------------------
def held_latches() -> List["Latch"]:
    """A snapshot of the latches the *calling thread* currently holds,
    outermost first. Thread-local, so safe to call without any lock."""
    return list(_held_stack())


def holds_rank(rank: int) -> bool:
    """True when the calling thread holds some latch of ``rank`` --
    the runtime form of a static ``guarded-by`` fact, checked by the
    lockset sanitizer on every instrumented attribute access."""
    return any(held.rank == rank for held in _held_stack())


class LatchOrderError(AssertionError):
    """A latch was acquired out of rank order (a potential lock-order
    deadlock). An AssertionError on purpose: this is a programming
    error in the engine, not a runtime condition to handle."""


class Latch:
    """A named, ranked, reentrant mutual-exclusion latch.

    Use as a context manager (``with latch:``) so acquisition and
    release are lexically paired -- the LOCK002 lint rule covers bare
    ``acquire`` calls on latches exactly as it does for the
    heavyweight lock manager.
    """

    def __init__(self, name: str, rank: int) -> None:
        self.name = name
        self.rank = rank
        self._lock = threading.RLock()

    # -- ordering check ------------------------------------------------
    def _check_order(self, stack: List["Latch"]) -> None:
        if not stack:
            return
        if any(held is self for held in stack):
            return  # reentrant re-acquisition: always safe
        top = stack[-1]
        if top.rank >= self.rank:
            raise LatchOrderError(
                f"latch order violation: acquiring {self.name!r} "
                f"(rank {self.rank}) while holding {top.name!r} "
                f"(rank {top.rank}); latches must be taken in strictly "
                f"increasing rank order")

    def acquire(self) -> "Latch":
        self._check_order(_held_stack())
        self._lock.acquire()
        _held_stack().append(self)
        return self

    def release(self) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        self._lock.release()

    def held_by_me(self) -> bool:
        return any(held is self for held in _held_stack())

    def __enter__(self) -> "Latch":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Latch {self.name} rank={self.rank}>"


class EngineLatch(Latch):
    """The engine latch plus its condition variable for parking.

    A server thread holds this latch for the whole of one statement
    step; :meth:`park` suspends the thread (releasing the latch) until
    its wait condition reports ready, and :meth:`notify_all` is
    broadcast by every completed engine entry, since any commit, abort
    or rollback may have granted queued lock requests or decided a
    snapshot's safety.
    """

    #: Fallback re-check period while parked, seconds. Correctness
    #: never depends on it (every engine exit broadcasts); it bounds
    #: the cost of a lost wakeup to one poll interval.
    POLL_INTERVAL = 0.05

    def __init__(self, name: str = "engine", rank: int = RANK_ENGINE) -> None:
        super().__init__(name, rank)
        self._cond = threading.Condition(self._lock)
        #: Diagnostic counters (read under the latch).
        self.parks = 0  # repro: guarded-by(ENGINE)
        self.park_timeouts = 0  # repro: guarded-by(ENGINE)

    def park(self, ready: Callable[[], bool], *,
             deadline: Optional[float] = None) -> bool:
        """Sleep until ``ready()`` is true, releasing the latch while
        asleep. Must be called with the latch held; returns holding it.

        Returns False when ``deadline`` (``time.monotonic()`` basis)
        expired first -- the caller decides how to cancel the wait.
        """
        self.parks += 1
        while not ready():
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.park_timeouts += 1
                    return False
                self._cond.wait(min(self.POLL_INTERVAL, remaining))
            else:
                self._cond.wait(self.POLL_INTERVAL)
        return True

    def bow(self) -> None:
        """Voluntary yield point: briefly release the latch so other
        threads may run (the thread analog of the scheduler honouring a
        mid-scan Yield). Must be called with the latch held exactly
        once; returns holding it."""
        # Condition.wait(0) releases the (possibly reentrant) latch,
        # gives waiters a chance to grab it, and re-acquires.
        self._cond.wait(0)

    def notify_all(self) -> None:
        """Broadcast to every parked thread. Must hold the latch."""
        self._cond.notify_all()
