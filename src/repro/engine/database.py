"""The Database: shared state and transaction lifecycle."""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.config import EngineConfig
from repro.engine.executor import Executor
from repro.engine.isolation import IsolationLevel
from repro.engine.transaction import Transaction, TxnStatus
from repro.errors import (DuplicateIndexError, DuplicateTableError,
                          InvalidTransactionStateError, UndefinedIndexError,
                          UndefinedTableError)
from repro.index import BTreeIndex, HashIndex
from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.mvcc.clog import CommitLog
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.xid import XidAllocator
from repro.obs import Observability, StatsView, install_counter_properties
from repro.replication.wal import CommitRecord
from repro.ssi.manager import SSIManager
from repro.storage.buffer import BufferManager
from repro.storage.relation import Relation
from repro.storage.stats import RelationStats, StatsCatalog
from repro.waits import SafeSnapshotWait


class EngineStats(StatsView):
    """Operational counters (benchmark inputs).

    A thin attribute view over ``engine.*`` registry counters
    (repro.obs): the attribute API is unchanged, but snapshots/diffs
    and the benchmark reporter see the same numbers."""

    _PREFIX = "engine."
    _FIELDS = ("begins", "commits", "aborts", "statements", "tuples_read",
               "tuples_written", "serialization_failures", "deadlocks",
               "update_conflicts", "snapshots_taken", "deferrable_retries")


install_counter_properties(EngineStats)


class Database:
    """One database instance: catalog plus all shared managers.

    Thread-unsafe by design: concurrency is expressed through multiple
    sessions driven by the deterministic scheduler (repro.sim), which
    interleaves their statements; statements suspend on wait conditions
    rather than blocking the process.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.obs = Observability(self.config.obs)
        self.clog = CommitLog()
        self.xids = XidAllocator()
        self.lockmgr = LockManager(obs=self.obs)
        self.ssi = SSIManager(self.config.ssi, self.clog, obs=self.obs)
        self.buffer = BufferManager(self.config.buffer_pages, obs=self.obs)
        self.stats = EngineStats(self.obs.metrics)
        #: Performance-layer toggles and counters (config.perf).
        self.use_hint_bits = self.config.perf.hint_bits
        self.use_vismap = self.config.perf.visibility_map
        self.use_vectorized = self.config.perf.vectorized_executor
        self.hint_counter = self.obs.metrics.counter("perf.hint_hits")
        self.vismap_counter = self.obs.metrics.counter("perf.vismap_skips")
        #: ANALYZE statistics catalog + cache-invalidation epoch.
        self.statscat = StatsCatalog()
        self.executor = Executor(self)
        #: Cost-based scan planner + engine-level plan cache.
        from repro.engine.planner import Planner
        self.planner = Planner(self)
        self._relations: Dict[str, Relation] = {}
        self._next_oid = 1
        #: Active transactions (including prepared ones) by top xid.
        self._active: Dict[int, Transaction] = {}
        #: Prepared transactions by global identifier (section 7.1).
        self._prepared: Dict[str, Transaction] = {}
        self._next_session_id = 1
        #: Logical WAL stream consumed by replication (section 7.2).
        self.wal: List[CommitRecord] = []
        #: Optional history recorder (repro.verify).
        self.recorder = None
        if self.config.record_history:
            from repro.verify.history import HistoryRecorder
            self.recorder = HistoryRecorder()
        #: Runtime invariant sanitizers (repro.analysis); None unless
        #: enabled by config or the REPRO_SANITIZE environment variable.
        #: Lazily imported so the analysis package costs nothing when off.
        #: Disk persistence (repro.storage.durable): physical WAL +
        #: page files + crash recovery. None unless the durability
        #: toggle is on -- every hook below is one ``is not None`` test,
        #: keeping the off path byte-identical to the in-memory engine.
        self.durability = None
        if self.config.durability.enabled:
            from repro.storage.durable.manager import DurabilityManager
            self.durability = DurabilityManager(self,
                                                self.config.durability)
        self.sanitizers = None
        if self.config.sanitize.enabled or os.environ.get("REPRO_SANITIZE"):
            from repro.analysis.sanitize import SanitizerRunner
            self.sanitizers = SanitizerRunner(self)
        self._register_gauges()
        if self.durability is not None:
            # Fresh data directory: publish the initial checkpoint that
            # anchors recovery. No-op while recovery itself runs.
            self.durability.startup()

    def _register_gauges(self) -> None:
        """Derived metrics, evaluated lazily at snapshot time (so they
        cost nothing on the hot path). The lambdas read ``self.ssi``
        etc. at call time, surviving simulate_crash_recovery's manager
        replacement."""
        m = self.obs.metrics
        m.gauge("sireads.live").set_function(
            lambda: self.ssi.lockmgr.lock_count)
        m.gauge("sireads.peak").set_function(
            lambda: self.ssi.lockmgr.peak_lock_count)
        m.gauge("pages.touched").set_function(
            lambda: self.buffer.hits + self.buffer.misses)
        m.gauge("pages.missed").set_function(lambda: self.buffer.misses)
        m.gauge("locks.deadlocks").set_function(
            lambda: self.lockmgr.deadlocks_detected)
        m.gauge("wal.records").set_function(lambda: len(self.wal))
        m.gauge("txns.active").set_function(lambda: len(self._active))

    # ------------------------------------------------------------------
    # catalog / DDL
    # ------------------------------------------------------------------
    def _alloc_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def create_table(self, name: str, columns: Sequence[str],
                     key: Optional[str] = None) -> Relation:
        """Create a table; ``key`` adds a unique B+-tree primary index.

        Setup-time operation: assumes no concurrent transactions (as
        does create_index), matching how the benchmarks load data.
        """
        if name in self._relations:
            raise DuplicateTableError(f"relation {name!r} already exists")
        rel = Relation(self._alloc_oid(), name, columns,
                       self.config.heap_page_size,
                       use_fsm=self.config.perf.fsm,
                       track_all_visible=self.config.perf.visibility_map)
        self._relations[name] = rel
        if self.durability is not None:
            self.durability.on_create_table(rel)
        if key is not None:
            self.create_index(name, key, name=f"{name}_pkey", unique=True)
        self.statscat.bump_epoch()  # new relation: flush cached plans
        return rel

    def drop_table(self, name: str) -> None:
        rel = self.relation(name)
        del self._relations[name]
        self.statscat.forget(rel.oid)  # drops stats + bumps the epoch
        if self.durability is not None:
            self.durability.on_drop_table(rel)
        # Outstanding SIREAD locks on a dropped table can never
        # conflict again (the oid is never reused).

    def create_index(self, table: str, column: str, *,
                     name: Optional[str] = None, unique: bool = False,
                     using: str = "btree"):
        rel = self.relation(table)
        index_name = name or f"{table}_{column}_{using}_idx"
        if index_name in rel.indexes:
            raise DuplicateIndexError(f"index {index_name!r} already exists")
        oid = self._alloc_oid()
        if using == "btree":
            index = BTreeIndex(oid, index_name, column,
                               unique=unique, page_size=self.config.btree_page_size)
        elif using == "hash":
            index = HashIndex(oid, index_name, column, unique=unique)
        elif using == "gist":
            from repro.index.gist import GiSTIndex
            index = GiSTIndex(oid, index_name, column, unique=unique,
                              node_size=self.config.btree_page_size // 4)
        else:
            raise ValueError(f"unknown index access method {using!r}")
        # Build from every non-dead heap version.
        for tup in rel.heap.scan():
            if not self.clog.did_abort(tup.xmin):  # repro: noqa(CLOG001) -- index build skips aborted inserters; no snapshot exists yet
                index.insert_entry(tup.data.get(column), tup.tid)
        rel.add_index(index)
        if self.durability is not None:
            self.durability.on_create_index(index, table)
        self.statscat.bump_epoch()  # new access path: flush cached plans
        return index

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UndefinedTableError(f"relation {name!r} does not exist") from None

    def relations(self) -> Dict[str, Relation]:
        return dict(self._relations)

    def index_by_name(self, name: str):
        for rel in self._relations.values():
            if name in rel.indexes:
                return rel, rel.indexes[name]
        raise UndefinedIndexError(f"index {name!r} does not exist")

    # ------------------------------------------------------------------
    # sessions and snapshots
    # ------------------------------------------------------------------
    def session(self, default_isolation: IsolationLevel =
                IsolationLevel.READ_COMMITTED):
        from repro.engine.session import Session
        sid = self._next_session_id
        self._next_session_id += 1
        return Session(self, sid, default_isolation)

    def take_snapshot(self) -> Snapshot:
        """The set of transactions whose effects are visible
        (section 5.1): everything not in progress right now."""
        self.stats.snapshots_taken += 1
        xip = set()
        for txn in self._active.values():
            xip.update(txn.all_xids)
        xmin = min((txn.xid for txn in self._active.values()),
                   default=self.xids.next_xid)
        return Snapshot(xmin=xmin, xmax=self.xids.next_xid,
                        xip=frozenset(xip))

    def active_transactions(self) -> List[Transaction]:
        return list(self._active.values())

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def begin_gen(self, isolation: IsolationLevel, *, read_only: bool,
                  deferrable: bool) -> Iterator:
        """Start a transaction; yields SafeSnapshotWait while a
        DEFERRABLE transaction waits for a safe snapshot (section 4.3),
        retrying with fresh snapshots until one is proven safe."""
        if deferrable and not read_only:
            raise InvalidTransactionStateError(
                "DEFERRABLE requires READ ONLY")
        while True:
            xid = self.xids.assign()
            self.clog.register(xid)
            self.lockmgr.acquire(xid, ("xid", xid), LockMode.EXCLUSIVE)  # repro: noqa(LOCK002) -- xid lock held to txn end, released by release_all at commit/abort
            snapshot = self.take_snapshot()
            txn = Transaction(xid, isolation, snapshot, read_only=read_only,
                              deferrable=deferrable)
            self._active[xid] = txn
            self.stats.begins += 1
            if self.obs.tracer is not None:
                self.obs.tracer.emit("txn.begin", xid,
                                     isolation=isolation.value,
                                     read_only=read_only,
                                     deferrable=deferrable)
                self.obs.tracer.emit("txn.snapshot", xid,
                                     xmin=snapshot.xmin, xmax=snapshot.xmax)
            if self.recorder is not None:
                self.recorder.on_begin(xid, snapshot, isolation)
            if isolation.uses_ssi:
                sx = self.ssi.begin(xid, snapshot, read_only=read_only,
                                    deferrable=deferrable)
                txn.sxact = sx
                if deferrable and not sx.ro_safe:
                    while not (sx.ro_safe or sx.ro_unsafe):
                        yield SafeSnapshotWait(sx)
                    if not sx.ro_safe:
                        # Unsafe: give up this snapshot and retry with
                        # a new one (section 4.3).
                        self.stats.deferrable_retries += 1
                        self._discard_txn(txn)
                        continue
            return txn

    def _discard_txn(self, txn: Transaction) -> None:
        if txn.sxact is not None:
            self.ssi.abort(txn.sxact)
        self.clog.set_aborted(txn.live_xids())
        self.lockmgr.release_all(txn.xid)
        self._active.pop(txn.xid, None)

    def commit_txn(self, txn: Transaction) -> None:
        """Commit; raises SerializationFailure (and aborts the
        transaction) if the pre-commit dangerous-structure check fails
        (section 5.4, commit-time rule)."""
        if txn.status not in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
            raise InvalidTransactionStateError(
                f"cannot commit transaction in state {txn.status.value}")
        if txn.sxact is not None and txn.status is not TxnStatus.PREPARED:
            try:
                self.ssi.precommit_check(txn.sxact)
            except Exception:
                self.abort_txn(txn)
                raise
        self.clog.set_committed(txn.live_xids())
        txn.status = TxnStatus.COMMITTED
        if txn.sxact is not None:
            self.ssi.commit(txn.sxact)
        self._active.pop(txn.xid, None)
        self.lockmgr.release_all(txn.xid)
        self.stats.commits += 1
        if self.obs.tracer is not None:
            self.obs.tracer.emit(
                "txn.commit", txn.xid,
                commit_seq=(txn.sxact.commit_seq
                            if txn.sxact is not None else None))
        marker = False
        if txn.wal_changes or not txn.read_only:
            marker = self._snapshot_now_safe()
            self.wal.append(CommitRecord(
                xid=txn.xid, changes=list(txn.wal_changes),
                safe_snapshot_marker=marker))
            if self.obs.tracer is not None:
                self.obs.tracer.emit("wal.ship", txn.xid,
                                     changes=len(txn.wal_changes),
                                     safe_snapshot_marker=marker)
        if self.durability is not None:
            # Physical WAL: the commit is acknowledged once its frame
            # is durable (or, with synchronous_commit off, queued).
            self.durability.on_commit(txn, marker)
        if self.recorder is not None:
            self.recorder.on_commit(txn.xid)
        if self.sanitizers is not None:
            self.sanitizers.on_txn_end(txn)

    def abort_txn(self, txn: Transaction) -> None:
        if txn.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            return
        self.clog.set_aborted(txn.live_xids())
        txn.status = TxnStatus.ABORTED
        if txn.sxact is not None:
            self.ssi.abort(txn.sxact)
        self._active.pop(txn.xid, None)
        if txn.gid is not None:
            self._prepared.pop(txn.gid, None)
        self.lockmgr.release_all(txn.xid)
        self.stats.aborts += 1
        if self.durability is not None:
            self.durability.on_abort(txn)
        if self.obs.tracer is not None:
            self.obs.tracer.emit("txn.abort", txn.xid)
        if self.recorder is not None:
            self.recorder.on_abort(txn.xid)
        if self.sanitizers is not None:
            self.sanitizers.on_txn_end(txn)

    def _snapshot_now_safe(self) -> bool:
        """Would a snapshot taken right now be safe? True when no
        read/write serializable transaction is active -- the marker the
        master adds to the log stream for replicas (section 7.2)."""
        return not any(not sx.declared_read_only
                       for sx in self.ssi.active_sxacts())

    # ------------------------------------------------------------------
    # two-phase commit (section 7.1)
    # ------------------------------------------------------------------
    def prepare_txn(self, txn: Transaction, gid: str) -> None:
        if txn.status is not TxnStatus.ACTIVE:
            raise InvalidTransactionStateError(
                f"cannot prepare transaction in state {txn.status.value}")
        if gid in self._prepared:
            raise InvalidTransactionStateError(
                f"prepared transaction {gid!r} already exists")
        if txn.sxact is not None:
            try:
                # The pre-commit check must happen before PREPARE: a
                # prepared transaction can never be aborted afterwards.
                self.ssi.prepare(txn.sxact)
            except Exception:
                self.abort_txn(txn)
                raise
            # "Persist" SIREAD locks so they survive a crash.
            txn.persisted_siread = self.ssi.lockmgr.targets_held(txn.sxact)
        txn.status = TxnStatus.PREPARED
        txn.gid = gid
        self._prepared[gid] = txn
        if self.durability is not None:
            # Section 7.1: the prepare record (snapshot + SIREAD locks +
            # redo) must be durable before the vote is returned.
            self.durability.on_prepare(txn)

    def commit_prepared(self, gid: str) -> None:
        txn = self._get_prepared(gid)
        del self._prepared[gid]
        self.commit_txn(txn)

    def rollback_prepared(self, gid: str) -> None:
        txn = self._get_prepared(gid)
        txn.status = TxnStatus.ACTIVE  # make abortable
        if txn.sxact is not None:
            txn.sxact.prepared = False
        self.abort_txn(txn)

    def _get_prepared(self, gid: str) -> Transaction:
        try:
            return self._prepared[gid]
        except KeyError:
            raise InvalidTransactionStateError(
                f"prepared transaction {gid!r} does not exist") from None

    def prepared_gids(self) -> List[str]:
        return sorted(self._prepared)

    def simulate_crash_recovery(self) -> None:
        """Crash: lose all in-RAM state; recover from "disk" (the heap,
        clog, and persisted prepared-transaction records).

        Active transactions are aborted. Prepared transactions survive
        with their SIREAD locks, but the dependency graph is gone, so
        they are conservatively assumed to have rw-antidependencies
        both in and out (section 7.1).
        """
        for txn in list(self._active.values()):
            if txn.status is not TxnStatus.PREPARED:
                self.abort_txn(txn)
        self.lockmgr = LockManager(obs=self.obs)
        self.ssi = SSIManager(self.config.ssi, self.clog, obs=self.obs)
        for txn in self._active.values():  # prepared survivors
            self.lockmgr.acquire(txn.xid, ("xid", txn.xid),  # repro: noqa(LOCK002) -- re-taken for prepared survivors; released when they resolve
                                 LockMode.EXCLUSIVE)
            sx = self.ssi.register_recovered_prepared(txn.xid, txn.snapshot)
            self.ssi.lockmgr.restore_recovered(
                sx, getattr(txn, "persisted_siread", ()))  # from disk
            txn.sxact = sx

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Durability checkpoint: flush WAL, write back dirty pages and
        the CLOG/old-serxid segments, publish checkpoint.json. No-op
        (returns None) when durability is off."""
        if self.durability is not None:
            return self.durability.checkpoint()
        return None

    def close(self) -> None:
        """Clean shutdown. With durability on: drain acknowledged
        commits, take a shutdown checkpoint, close the data files.
        Otherwise a no-op -- the in-memory engine has nothing to
        release."""
        if self.durability is not None:
            self.durability.close()

    def vacuum(self, table: Optional[str] = None) -> int:
        """Remove dead tuple versions and their index entries."""
        horizon = min((txn.snapshot.xmin for txn in self._active.values()
                       if txn.snapshot is not None),
                      default=self.xids.next_xid)
        removed_total = 0
        rels = ([self.relation(table)] if table
                else list(self._relations.values()))
        for rel in rels:
            removed = rel.heap.vacuum(horizon, self.clog,
                                      use_hints=self.use_hint_bits,
                                      hint_counter=self.hint_counter)
            removed_total += len(removed)
            for tup in removed:
                for index in rel.indexes.values():
                    index.remove_entry(tup.data.get(index.column), tup.tid)
        return removed_total

    def analyze(self, table: Optional[str] = None) -> List[RelationStats]:
        """ANALYZE [table]: rebuild planner statistics from live rows.

        Rows are counted under a fresh snapshot through the ordinary
        MVCC visibility rules (an external observer: no own-write
        view), and distribution stats are built for every indexed
        column. Installing the stats bumps the stats epoch, which
        invalidates all cached plans and prepared-statement plans.
        """
        from repro.mvcc.visibility import TxnView, tuple_visibility
        snapshot = self.take_snapshot()
        view = TxnView(xids=frozenset(), curcid=0)
        rels = ([self.relation(table)] if table
                else [self._relations[name] for name in
                      sorted(self._relations)])
        out: List[RelationStats] = []
        analyze_counter = self.obs.metrics.counter("planner.analyze_runs")
        for rel in rels:
            rows: List[Dict[str, Any]] = []
            for tup in rel.heap.scan():
                vis = tuple_visibility(tup, snapshot, view, self.clog,
                                       self.use_hint_bits, self.hint_counter)
                if vis.visible:
                    rows.append(tup.data)
            columns = sorted({index.column
                              for index in rel.indexes.values()})
            out.append(self.statscat.analyze_relation(rel, rows, columns))
            analyze_counter.inc()
        return out

    # ------------------------------------------------------------------
    # cost-model inputs (repro.sim)
    # ------------------------------------------------------------------
    def work_counters(self) -> Dict[str, float]:
        return {
            "tuples_read": self.stats.tuples_read,
            "tuples_written": self.stats.tuples_written,
            "hw_lock_work": self.lockmgr.work_units,
            "ssi_lock_work": self.ssi.work_units,
            "io_misses": self.buffer.misses,
            "txns": self.stats.begins + self.stats.commits + self.stats.aborts,
            "deadlocks": self.lockmgr.deadlocks_detected,
        }

    # ------------------------------------------------------------------
    # monitoring views (pg_stat_activity / pg_locks style)
    # ------------------------------------------------------------------
    def stat_activity(self):
        from repro.engine import introspection
        return introspection.stat_activity(self)

    def lock_status(self):
        from repro.engine import introspection
        return introspection.lock_status(self)

    def siread_locks(self):
        from repro.engine import introspection
        return introspection.siread_locks(self)

    def prepared_xacts(self):
        from repro.engine import introspection
        return introspection.prepared_xacts(self)

    def ssi_summary(self):
        from repro.engine import introspection
        return introspection.ssi_summary(self)

    def stat_ssi(self):
        from repro.engine import introspection
        return introspection.stat_ssi(self)

    def trace_events(self, kind: Optional[str] = None,
                     xid: Optional[int] = None):
        from repro.engine import introspection
        return introspection.trace_events(self, kind=kind, xid=xid)

    # ------------------------------------------------------------------
    # recorder hooks
    # ------------------------------------------------------------------
    def record_read(self, txn: Transaction, rel, pred, tuples) -> None:
        if self.recorder is not None:
            self.recorder.on_read(txn.xid, rel.oid, pred,
                                  [t.tid for t in tuples],
                                  self.take_snapshot())

    def record_write(self, txn: Transaction, rel, kind: str, old, new) -> None:
        self.statscat.note_write(rel.oid, kind)
        if self.durability is not None:
            self.durability.on_write(txn, rel, kind, old, new)
        if self.recorder is not None:
            self.recorder.on_write(txn.xid, rel.oid, kind, old, new)
