"""Quickstart: the public API in five minutes.

Creates a database, runs transactions at different isolation levels,
provokes the simplest snapshot-isolation anomaly, and shows
SERIALIZABLE (SSI) stopping it -- with the retry loop the paper
assumes applications use (section 3.3).

Run:  python examples/quickstart.py
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, Gt, IsolationLevel
from repro.errors import SerializationFailure

SER = IsolationLevel.SERIALIZABLE
SI = IsolationLevel.REPEATABLE_READ


def main() -> None:
    # -- schema and data -------------------------------------------------
    db = Database(EngineConfig())
    db.create_table("accounts", ["id", "owner", "balance"], key="id")
    db.create_index("accounts", "owner")

    session = db.session()
    for i, owner in enumerate(["alice", "bob", "carol"]):
        session.insert("accounts", {"id": i, "owner": owner, "balance": 100})

    # -- autocommit statements -------------------------------------------
    rows = session.select("accounts", Gt("balance", 50))
    print(f"{len(rows)} accounts over 50:", [r["owner"] for r in rows])

    # -- explicit transactions ---------------------------------------------
    session.begin(SER)
    session.update("accounts", Eq("owner", "alice"),
                   lambda r: {"balance": r["balance"] - 30})
    session.update("accounts", Eq("owner", "bob"),
                   lambda r: {"balance": r["balance"] + 30})
    session.commit()
    print("after transfer:",
          {r["owner"]: r["balance"] for r in session.select("accounts")})

    # -- write skew: the simplest SI anomaly --------------------------------
    # Invariant: alice + bob together keep at least 100 in the bank.
    def withdraw(s, owner, amount):
        rows = s.select("accounts", Eq("owner", "alice")) + \
               s.select("accounts", Eq("owner", "bob"))
        total = sum(r["balance"] for r in rows)
        if total - amount >= 100:
            s.update("accounts", Eq("owner", owner),
                     lambda r: {"balance": r["balance"] - amount})

    def run_concurrent_withdrawals(isolation):
        # Serially, only ONE withdrawal of 60 fits: 200 -> 140, and a
        # second would leave 80 < 100. Concurrently under SI, both see
        # the stale total of 200 and both proceed: write skew.
        s1, s2 = db.session(), db.session()
        s1.begin(isolation)
        s2.begin(isolation)
        withdraw(s1, "alice", 60)
        withdraw(s2, "bob", 60)
        outcomes = []
        for s in (s1, s2):
            try:
                s.commit()
                outcomes.append("committed")
            except SerializationFailure:
                outcomes.append("ABORTED (serialization failure)")
        return outcomes

    # Reset balances, then race under snapshot isolation.
    session.update("accounts", None, {"balance": 100})
    print("\nconcurrent withdrawals under snapshot isolation:",
          run_concurrent_withdrawals(SI))
    total = sum(r["balance"] for r in session.select("accounts")
                if r["owner"] in ("alice", "bob"))
    print(f"  alice+bob = {total}  (invariant >= 100 "
          f"{'HELD' if total >= 100 else 'VIOLATED -- write skew!'})")

    session.update("accounts", None, {"balance": 100})
    print("\nconcurrent withdrawals under SERIALIZABLE (SSI):",
          run_concurrent_withdrawals(SER))
    total = sum(r["balance"] for r in session.select("accounts")
                if r["owner"] in ("alice", "bob"))
    print(f"  alice+bob = {total}  (invariant >= 100 "
          f"{'HELD' if total >= 100 else 'VIOLATED'})")

    # -- the retry loop real applications use --------------------------------
    retry_session = db.session()

    def risky(s):
        withdraw(s, "alice", 10)
        return "done"

    result = retry_session.run_transaction(risky, SER)
    print(f"\nrun_transaction with automatic safe retry: {result}")
    print("engine stats:", db.stats)


if __name__ == "__main__":
    main()
