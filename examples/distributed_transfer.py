"""Distributed transactions over two-phase commit (section 7.1).

PostgreSQL's PREPARE TRANSACTION is "a primitive that can be used to
build an external transaction coordinator" -- so this example builds
one: a transfer between two separate databases (bank shards), with SSI
guarding each shard and the coordinator guaranteeing atomic commit,
including recovery from a coordinator crash between the two phases.

Run:  python examples/distributed_transfer.py
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.engine.coordinator import Coordinator, Decision
from repro.errors import SerializationFailure


def make_shard(balance):
    db = Database(EngineConfig())
    db.create_table("accounts", ["id", "owner", "balance"], key="id")
    db.session().insert("accounts",
                        {"id": 1, "owner": "acme", "balance": balance})
    return db


def balances(coordinator):
    return {name: db.session().select("accounts", Eq("id", 1))[0]["balance"]
            for name, db in coordinator.databases.items()}


def main() -> None:
    coordinator = Coordinator({"east": make_shard(100),
                               "west": make_shard(100)})

    print("=== atomic cross-shard transfer ===")
    dtx = coordinator.transaction()
    dtx.on("east").update("accounts", Eq("id", 1),
                          lambda r: {"balance": r["balance"] - 40})
    dtx.on("west").update("accounts", Eq("id", 1),
                          lambda r: {"balance": r["balance"] + 40})
    dtx.commit()
    print(f"  balances after transfer: {balances(coordinator)}")

    print("\n=== SSI failure on one shard aborts the whole transfer ===")
    east = coordinator.databases["east"]
    rival = east.session()
    rival.begin(IsolationLevel.SERIALIZABLE)
    rival.select("accounts", Eq("id", 1))
    closer = east.session()
    closer.begin(IsolationLevel.SERIALIZABLE)
    closer.update("accounts", Eq("id", 1), lambda r: {"balance": r["balance"]})
    closer.commit()

    dtx = coordinator.transaction()
    try:
        dtx.on("east").select("accounts", Eq("id", 1))
        rival.update("accounts", Eq("id", 1),
                     lambda r: {"balance": r["balance"] + 1})
        dtx.on("east").update("accounts", Eq("id", 1),
                              lambda r: {"balance": r["balance"] - 40})
        dtx.on("west").update("accounts", Eq("id", 1),
                              lambda r: {"balance": r["balance"] + 40})
        rival.commit()
        dtx.commit()
        print("  transfer committed (interleaving was harmless)")
    except SerializationFailure:
        if not dtx._finished:
            dtx.rollback()
        print("  transfer ABORTED atomically: SSI fired on the east shard")
        if rival.in_transaction():
            rival.rollback()
    print(f"  balances: {balances(coordinator)} (consistent either way)")

    print("\n=== coordinator crash between the phases ===")
    dtx = coordinator.transaction(gid="crashy")
    dtx.on("east").update("accounts", Eq("id", 1),
                          lambda r: {"balance": r["balance"] - 1})
    dtx.on("west").update("accounts", Eq("id", 1),
                          lambda r: {"balance": r["balance"] + 1})
    for name in ("east", "west"):
        dtx.on(name).prepare_transaction(f"crashy:{name}")
    coordinator.log.append(("crashy", Decision.COMMITTED))
    print("  decision logged; coordinator 'crashes' before phase 2")
    print(f"  in-doubt branches: "
          f"{[g for db in coordinator.databases.values() for g in db.prepared_gids()]}")
    actions = coordinator.recover()
    print(f"  recovery: {actions}")
    print(f"  balances: {balances(coordinator)}")


if __name__ == "__main__":
    main()
