"""Streaming replication and safe snapshots on a standby (section 7.2).

Demonstrates why plain snapshot reads on a replica are not
serializable even when the master runs SSI -- the REPORT query of
Figure 2, moved to the standby, observes an anomalous state the master
itself would have prevented -- and how safe-snapshot markers in the
log stream fix it.

Run:  python examples/replication_demo.py
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.replication import Replica, ReplicaReadMode

SER = IsolationLevel.SERIALIZABLE


def main() -> None:
    master = Database(EngineConfig())
    master.create_table("control", ["id", "batch"], key="id")
    master.create_table("receipts", ["rid", "batch", "amount"], key="rid")
    master.session().insert("control", {"id": 0, "batch": 1})
    replica = Replica(master)
    replica.catch_up()

    print("=== the Figure 2 anomaly, moved to the standby ===")
    new_receipt = master.session()
    new_receipt.begin(SER)
    x = new_receipt.select("control", Eq("id", 0))[0]["batch"]
    print(f"  master: NEW-RECEIPT reads batch {x} (still open)")
    close_batch = master.session()
    close_batch.begin(SER)
    close_batch.update("control", Eq("id", 0),
                       lambda r: {"batch": r["batch"] + 1})
    close_batch.commit()
    print("  master: CLOSE-BATCH commits (no safe-snapshot marker: "
          "NEW-RECEIPT is still active)")
    replica.catch_up()

    # REPORT on the standby, snapshot-isolation style:
    batch = replica.query("control")[0]["batch"]
    total = sum(r["amount"] for r in replica.query(
        "receipts", Eq("batch", batch - 1)))
    print(f"  standby (latest state): batch {batch} is current, "
          f"batch {batch - 1} total = {total}")

    new_receipt.insert("receipts", {"rid": 1, "batch": x, "amount": 100})
    new_receipt.commit()
    print(f"  master: NEW-RECEIPT commits a 100 into batch {x} -- "
          "allowed, since without the report the history is serializable")
    replica.catch_up()
    total_after = sum(r["amount"] for r in replica.query(
        "receipts", Eq("batch", batch - 1)))
    print(f"  standby: batch {batch - 1} total is now {total_after} -- "
          f"the standby report showed {total}: ANOMALY")

    print("\n=== the fix: serializable reads use safe snapshots ===")
    print(f"  safe snapshot available: {replica.has_safe_snapshot}, "
          f"lagging {replica.safe_snapshot_lag} commits behind")
    safe_batch = replica.query(
        "control", mode=ReplicaReadMode.LATEST_SAFE)[0]["batch"]
    safe_total = sum(r["amount"] for r in replica.query(
        "receipts", Eq("batch", safe_batch - 1),
        mode=ReplicaReadMode.LATEST_SAFE))
    print(f"  standby (safe snapshot): batch {safe_batch} current, "
          f"batch {safe_batch - 1} total = {safe_total}")
    print("  the safe state is a prefix of the apparent serial order: "
          "it can be stale, never anomalous")


if __name__ == "__main__":
    main()
