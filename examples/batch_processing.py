"""Figure 2 walkthrough: the batch-processing anomaly, the read-only
optimizations, and deferrable transactions.

Three acts, following sections 2.1.2, 4.1, and 4.3 of the paper:

1. Under snapshot isolation the REPORT shows a total that silently
   changes afterwards -- the corruption that motivated the Wisconsin
   Court System's push for true serializability.
2. Under SERIALIZABLE, SSI aborts the NEW-RECEIPT transaction (the
   pivot, per the safe-retry rules) and the retried transaction lands
   in the new batch; and if the REPORT takes its snapshot early
   enough, the read-only optimization (Theorem 3) avoids any abort.
3. A DEFERRABLE read-only report waits for a safe snapshot and then
   runs with no SSI overhead and no abort risk.

Run:  python examples/batch_processing.py
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure, WouldBlock

SI = IsolationLevel.REPEATABLE_READ
SER = IsolationLevel.SERIALIZABLE


def fresh_db():
    db = Database(EngineConfig())
    db.create_table("control", ["id", "batch"], key="id")
    db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
    db.create_index("receipts", "batch")
    s = db.session()
    s.insert("control", {"id": 0, "batch": 1})
    return db


def current_batch(session):
    return session.select("control", Eq("id", 0))[0]["batch"]


def batch_total(session, batch):
    return sum(r["amount"] for r in
               session.select("receipts", Eq("batch", batch)))


def act1_snapshot_isolation():
    print("=== Act 1: the anomaly under snapshot isolation ===")
    db = fresh_db()
    new_receipt, report, close_batch = (db.session(), db.session(),
                                        db.session())
    new_receipt.begin(SI)
    x = current_batch(new_receipt)
    print(f"  NEW-RECEIPT reads current batch = {x}")
    close_batch.begin(SI)
    close_batch.update("control", Eq("id", 0),
                       lambda r: {"batch": r["batch"] + 1})
    close_batch.commit()
    print("  CLOSE-BATCH increments the batch and commits")
    report.begin(SI)
    rx = current_batch(report)
    total = batch_total(report, rx - 1)
    report.commit()
    print(f"  REPORT sees batch {rx}, shows batch {rx - 1} total = {total}")
    new_receipt.insert("receipts", {"rid": 1, "batch": x, "amount": 100})
    new_receipt.commit()
    print(f"  NEW-RECEIPT inserts a 100 into batch {x} and commits")
    final = batch_total(db.session(), rx - 1)
    print(f"  batch {rx - 1} total is now {final} -- the report said "
          f"{total}: SILENT CORRUPTION\n")


def act2_ssi():
    print("=== Act 2: SERIALIZABLE stops it; safe retry; Theorem 3 ===")
    db = fresh_db()
    new_receipt, report, close_batch = (db.session(), db.session(),
                                        db.session())
    new_receipt.begin(SER)
    x = current_batch(new_receipt)
    close_batch.begin(SER)
    close_batch.update("control", Eq("id", 0),
                       lambda r: {"batch": r["batch"] + 1})
    close_batch.commit()
    report.begin(SER, read_only=True)
    rx = current_batch(report)
    total = batch_total(report, rx - 1)
    report.commit()
    print(f"  REPORT commits: batch {rx - 1} total = {total}")
    try:
        new_receipt.insert("receipts", {"rid": 1, "batch": x, "amount": 100})
        new_receipt.commit()
        print("  NEW-RECEIPT committed (unexpected!)")
    except SerializationFailure as exc:
        print(f"  NEW-RECEIPT aborted: {exc}")
        new_receipt.rollback()
    # Safe retry: the retried transaction cannot fail the same way.
    new_receipt.begin(SER)
    x2 = current_batch(new_receipt)
    new_receipt.insert("receipts", {"rid": 1, "batch": x2, "amount": 100})
    new_receipt.commit()
    print(f"  retried NEW-RECEIPT lands in batch {x2}; "
          f"batch {rx - 1} total is still "
          f"{batch_total(db.session(), rx - 1)}")

    # Theorem 3: a report whose snapshot predates CLOSE-BATCH's commit
    # is a false positive and nothing aborts.
    nr2, early_report, cb2 = db.session(), db.session(), db.session()
    nr2.begin(SER)
    x3 = current_batch(nr2)
    early_report.begin(SER, read_only=True)  # snapshot BEFORE the close
    cb2.begin(SER)
    cb2.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
    cb2.commit()
    batch_total(early_report, current_batch(early_report) - 1)
    early_report.commit()
    nr2.insert("receipts", {"rid": 2, "batch": x3, "amount": 7})
    nr2.commit()
    print("  early-snapshot REPORT: read-only optimization applied, "
          "no transaction aborted\n")


def act3_deferrable():
    print("=== Act 3: deferrable transactions ===")
    db = fresh_db()
    writer = db.session()
    writer.begin(SER)
    writer.insert("receipts", {"rid": 10, "batch": 1, "amount": 5})
    deferrable = db.session()
    try:
        deferrable.begin(SER, read_only=True, deferrable=True)
        print("  deferrable began immediately (no concurrent writers)")
    except WouldBlock:
        print("  deferrable BEGIN is waiting for a safe snapshot...")
        writer.commit()
        print("  concurrent writer committed cleanly")
        deferrable.resume()
        print("  ...safe snapshot obtained")
    total = batch_total(deferrable, 1)
    deferrable.commit()
    print(f"  deferrable report ran with zero SSI overhead: "
          f"batch 1 total = {total}")
    sx_stats = db.ssi.stats
    print(f"  ssi stats: safe_snapshots={sx_stats.safe_snapshots} "
          f"unsafe={sx_stats.unsafe_snapshots}")


if __name__ == "__main__":
    act1_snapshot_isolation()
    act2_ssi()
    act3_deferrable()
