"""Auction site under load: the RUBiS scenario of section 8.3.

Runs the bidding mix through the deterministic concurrency simulator
at each isolation level and prints a Figure 6-style comparison:
throughput, serialization failures, and deadlocks. Then drills into
the paper's example conflict -- browsing a category while someone bids
on an item in it -- at the single-transaction level.

Run:  python examples/auction_site.py
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure
from repro.workloads import RubisBidding, run_workload

SER = IsolationLevel.SERIALIZABLE


def load_comparison() -> None:
    print("=== RUBiS bidding mix, 4 concurrent clients ===")
    print(f"{'mode':18s} {'txns/ktick':>10s} {'failures':>9s} "
          f"{'deadlocks':>9s}")
    for isolation in (IsolationLevel.REPEATABLE_READ, SER,
                      IsolationLevel.S2PL):
        result = run_workload(RubisBidding(), isolation=isolation,
                              n_clients=4, max_ticks=6000, seed=42)
        print(f"{isolation.value:18s} {result.throughput:10.1f} "
              f"{result.serialization_failure_rate:9.3%} "
              f"{result.deadlocks:9d}")
    print()


def bid_vs_browse() -> None:
    print("=== the paper's conflict: browsing vs bidding ===")
    db = Database(EngineConfig())
    db.create_table("items", ["i_id", "category", "max_bid", "nb_bids"],
                    key="i_id")
    db.create_index("items", "category")
    db.create_table("bids", ["b_id", "i_id", "amount"], key="b_id")
    db.create_table("views", ["v_id", "count"], key="v_id")
    s = db.session()
    for i in range(6):
        s.insert("items", {"i_id": i, "category": i % 2, "max_bid": 10,
                           "nb_bids": 1})
    s.insert("views", {"v_id": 0, "count": 0})

    browser, bidder = db.session(), db.session()
    browser.begin(SER)
    listing = browser.select("items", Eq("category", 0))
    print(f"  browser lists category 0: "
          f"{[(r['i_id'], r['max_bid']) for r in listing]}")
    # The browser then "renders a page" that updates a view counter...
    bidder.begin(SER)
    bidder.select("views", Eq("v_id", 0))
    # ...while the bidder raises a bid on a listed item:
    bidder.insert("bids", {"b_id": 100, "i_id": 0, "amount": 25})
    bidder.update("items", Eq("i_id", 0), {"max_bid": 25, "nb_bids": 2})
    bidder.commit()
    print("  bidder raised item 0 to 25 and committed")
    try:
        browser.update("views", Eq("v_id", 0),
                       lambda r: {"count": r["count"] + 1})
        browser.commit()
        print("  browser committed -- serial order: browser before bidder")
    except SerializationFailure as exc:
        print(f"  browser aborted by SSI: {exc}")
        browser.rollback()
    print("  (under S2PL the bidder would have BLOCKED on the browser's "
          "read locks instead)")


if __name__ == "__main__":
    load_comparison()
    bid_vs_browse()
