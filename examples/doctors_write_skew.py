"""Figure 1 walkthrough: the on-call doctors write-skew anomaly.

Replays the paper's motivating example (section 2.1.1) step by step at
every isolation level, printing what each transaction sees and what
the serializability checker says about the resulting history.  The
SERIALIZABLE run records a structured trace (repro.obs) and prints the
post-mortem for the failure: the T1 -rw-> pivot -rw-> T3 dangerous
structure SSI detected, edge by edge.

Run:  python examples/doctors_write_skew.py
"""

from repro.config import EngineConfig, ObsConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import DeadlockDetected, SerializationFailure, WouldBlock
from repro.obs import explain_failure
from repro.verify import check_serializable


def fresh_db():
    db = Database(EngineConfig(record_history=True,
                               obs=ObsConfig(enabled=True, trace=True)))
    db.create_table("doctors", ["name", "oncall"], key="name")
    s = db.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    return db


def figure1_interleaving(db, isolation):
    """Both transactions check >=2 doctors on call, then each takes a
    different doctor off call -- the exact interleaving of Figure 1."""
    t1, t2 = db.session(), db.session()
    log = []
    failure = None

    def step(label, fn):
        try:
            result = fn()
            log.append(f"  {label}: ok" + (f" -> {result}" if result
                                            is not None else ""))
            return result
        except (SerializationFailure, DeadlockDetected) as exc:
            log.append(f"  {label}: {type(exc).__name__}")
            raise

    try:
        t1.begin(isolation)
        t2.begin(isolation)
        n1 = step("T1 count on-call", lambda: len(
            t1.select("doctors", Eq("oncall", True))))
        n2 = step("T2 count on-call", lambda: len(
            t2.select("doctors", Eq("oncall", True))))
        blocked = []
        for label, session, name, n in (
                ("T1 takes alice off call", t1, "alice", n1),
                ("T2 takes bob off call", t2, "bob", n2)):
            if n < 2:
                continue
            try:
                step(label, lambda s=session, d=name: s.update(
                    "doctors", Eq("name", d), {"oncall": False}))
            except WouldBlock:
                log.append(f"  {label}: BLOCKED (2PL read locks)")
                blocked.append(session)
            except DeadlockDetected:
                log.append("  deadlock victim rolls back")
                session.rollback()
        for session in (t1, t2):
            if session.blocked or not session.in_transaction():
                continue
            label = "T1 commit" if session is t1 else "T2 commit"
            step(label, session.commit)
        for session in blocked:
            try:
                session.resume()
                session.commit()
                log.append("  blocked transaction resumed and committed")
            except (SerializationFailure, DeadlockDetected) as exc:
                log.append(f"  blocked transaction: {type(exc).__name__}")
                if isinstance(exc, SerializationFailure):
                    failure = exc
                session.rollback()
    except SerializationFailure as exc:
        failure = exc
        for session in (t1, t2):
            if session.in_transaction():
                session.rollback()
    return log, failure


def print_postmortem(db, failure) -> None:
    print("  --- post-mortem (repro.obs) ---")
    report = explain_failure(db, failure)
    for line in report.render().splitlines():
        print(f"  {line}")


def main() -> None:
    for isolation in (IsolationLevel.REPEATABLE_READ,
                      IsolationLevel.SERIALIZABLE,
                      IsolationLevel.S2PL):
        db = fresh_db()
        print(f"\n=== {isolation.value.upper()} ===")
        log, failure = figure1_interleaving(db, isolation)
        for line in log:
            print(line)
        on_call = [r["name"] for r in
                   db.session().select("doctors", Eq("oncall", True))]
        verdict = check_serializable(db.recorder)
        print(f"  on call afterwards: {on_call or 'NOBODY'}")
        print(f"  invariant 'someone on call': "
              f"{'HELD' if on_call else 'VIOLATED'}")
        print(f"  history serializable: {verdict.serializable}"
              + (f" (cycle: {verdict.cycle})" if verdict.cycle else ""))
        if failure is not None:
            print_postmortem(db, failure)


if __name__ == "__main__":
    main()
