"""Ad hoc SQL: the paper's last argument for serializability.

Section 2.2 observes that even a perfectly analyzed application is
undone by ad hoc queries -- an administrator at psql inspecting or
repairing data. This example scripts such a session: the "application"
transactions are innocuous, but the admin's ad hoc read-modify-write
races with them; under SERIALIZABLE the database protects the admin
without anyone having analyzed the query in advance.

Also doubles as a mini SQL REPL: pass statements on the command line,
or run with no arguments for the scripted demo.

Run:  python examples/sql_adhoc.py
      python examples/sql_adhoc.py "SELECT 1 FROM t"     # ad hoc mode
"""

import sys

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import ReproError, SerializationFailure
from repro.sql import SQLSession


def scripted_demo() -> None:
    db = Database(EngineConfig())
    app = SQLSession(db.session())
    admin = SQLSession(db.session())

    app.execute("CREATE TABLE warrants (wid INT PRIMARY KEY, person TEXT, "
                "status TEXT)")
    app.execute("INSERT INTO warrants (wid, person, status) VALUES "
                "(1, 'doe', 'active'), (2, 'roe', 'active'), "
                "(3, 'poe', 'served')")

    print("=== the admin runs an ad hoc repair at 'psql' ===")
    admin.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    rows = admin.execute(
        "SELECT COUNT(*) FROM warrants WHERE status = 'active'")
    print(f"  admin: {rows[0]['count']} active warrants; will archive "
          "them all if there are fewer than 3")

    # Meanwhile the application activates another warrant, having made
    # the same kind of check itself.
    app.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    n = app.execute("SELECT COUNT(*) FROM warrants "
                    "WHERE status = 'active'")[0]["count"]
    if n < 3:
        app.execute("UPDATE warrants SET status = 'active' WHERE wid = 3")
    app.execute("COMMIT")
    print("  app: re-activated warrant 3 (it saw fewer than 3 active)")

    try:
        if rows[0]["count"] < 3:
            admin.execute("UPDATE warrants SET status = 'archived' "
                          "WHERE status = 'active'")
        admin.execute("COMMIT")
        print("  admin: archive committed")
    except SerializationFailure:
        print("  admin: ABORTED by SSI -- the ad hoc query raced with the "
              "application; no static analysis saw this coming, the "
              "runtime check did")
        admin.execute("ROLLBACK")

    final = SQLSession(db.session()).execute(
        "SELECT COUNT(*) FROM warrants WHERE status = 'active'")
    print(f"  final active count: {final[0]['count']}")


def repl(statements) -> None:
    db = Database(EngineConfig())
    sql = SQLSession(db.session())
    for statement in statements:
        try:
            result = sql.execute(statement)
        except ReproError as exc:
            print(f"ERROR: {exc}")
            continue
        if isinstance(result, list):
            for row in result:
                print(row)
        elif result is not None:
            print(f"OK ({result} rows)")
        else:
            print("OK")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        repl(sys.argv[1:])
    else:
        scripted_demo()
