"""Meeting-room booking with a GiST interval index (section 7.4's
planned GiST support, implemented).

The classic booking race: two assistants check that a time slot is
free and both book it. The free-slot check is an interval-overlap
query -- not expressible as a B+-tree range over a single column --
served by the GiST index, whose internal-node SIREAD locks give SSI
the phantom information it needs.

Run:  python examples/meeting_rooms.py
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel, Overlaps
from repro.errors import SerializationFailure

SER = IsolationLevel.SERIALIZABLE


def setup():
    db = Database(EngineConfig())
    db.create_table("bookings", ["bid", "room", "who", "span"], key="bid")
    db.create_index("bookings", "span", using="gist")
    s = db.session()
    s.insert("bookings", {"bid": 1, "room": "aquarium", "who": "ops",
                          "span": (9, 10)})
    s.insert("bookings", {"bid": 2, "room": "aquarium", "who": "sales",
                          "span": (15, 16)})
    return db


def book(session, bid, who, span):
    """Book `span` if the room is free then -- the application-level
    invariant is 'no two bookings overlap'."""
    clashes = session.select("bookings", Overlaps("span", *span))
    if clashes:
        return f"{who}: slot taken by {clashes[0]['who']}"
    session.insert("bookings", {"bid": bid, "room": "aquarium",
                                "who": who, "span": span})
    return f"{who}: booked {span}"


def overlapping_pairs(db):
    rows = db.session().select("bookings")
    pairs = []
    for i, a in enumerate(rows):
        for b in rows[i + 1:]:
            if a["span"][0] < b["span"][1] and b["span"][0] < a["span"][1]:
                pairs.append((a["who"], b["who"]))
    return pairs


def race(db, isolation):
    alice, bob = db.session(), db.session()
    alice.begin(isolation)
    bob.begin(isolation)
    print(" ", book(alice, 10, "alice", (11, 13)))
    print(" ", book(bob, 11, "bob", (12, 14)))
    outcomes = []
    for s, who in ((alice, "alice"), (bob, "bob")):
        try:
            s.commit()
            outcomes.append(f"{who} committed")
        except SerializationFailure:
            s.begin(isolation)  # safe retry
            print(" ", book(s, 12, who, (12, 14)))
            s.commit()
            outcomes.append(f"{who} aborted, retried")
    return outcomes


def main() -> None:
    print("=== snapshot isolation: the double-booking slips through ===")
    db = setup()
    print(" ", race(db, IsolationLevel.REPEATABLE_READ))
    pairs = overlapping_pairs(db)
    print(f"  overlapping bookings afterwards: {pairs or 'none'}")

    print("\n=== SERIALIZABLE: SSI catches it through the GiST locks ===")
    db = setup()
    print(" ", race(db, SER))
    pairs = overlapping_pairs(db)
    print(f"  overlapping bookings afterwards: {pairs or 'none'}")


if __name__ == "__main__":
    main()
